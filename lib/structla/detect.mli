(** Automatic structure detection.

    [classify] inspects a concrete dense matrix and returns the most
    refined structure it satisfies, repacked into that structure's
    representation. Soundness is by construction — every branch goes
    through the strict {!Mat} packers, so
    [Mat.to_dense (classify m) = m] exactly — and the classification is
    deterministic (fixed priority: diagonal, triangular, symmetric,
    banded when the band is at most half the order, CSR when at most a
    quarter of the entries are nonzero, else dense). *)

type profile = {
  pr_lo : int;  (** max sub-diagonal distance of a nonzero *)
  pr_hi : int;  (** max super-diagonal distance of a nonzero *)
  pr_nnz : int;
  pr_symmetric : bool;
}

val profile : Mat.dense -> profile

val classify : Mat.dense -> Mat.t
(** Emits a [structla.detect] telemetry span and a
    [gp_structla_detect_total] counter labelled by result. *)

val classify_quiet : Mat.dense -> Mat.t
(** {!classify} without the telemetry traffic. *)
