(* The matrix-structure concept taxonomy (the paper's Section 3 story
   instantiated for linear algebra): each structure is a concept
   refining DenseMatrix, carrying the complexity guarantees its kernels
   actually meet, and each packed representation is a declared —
   checked — model of its structure and of every structure above it.

   The refinement DAG (most refined at the bottom):

   {v
                        DenseMatrix
            /        |        |          \
     SymmetricMatrix | TriangularMatrix  SparseMatrix
            \   BandedMatrix  /
             \       |       /
              DiagonalMatrix
   v}

   Nominal checking walks this DAG, so every carrier declares a model
   for its concept and for each ancestor, each with the complexity the
   carrier's kernels achieve *for that concept's requirement* — e.g.
   csrmat's SparseMatrix model declares the O(nnz) matvec, while its
   DenseMatrix model declares O(n^2): O(nnz) and O(n^2) live over
   different size variables and are incomparable, so the refined bound
   belongs only to the refined concept. *)

open Gp_concepts

let v t = Ctype.Var t
let n name = Ctype.Named name

(* Size variables: [n] order, [b] bandwidth, [nnz] stored nonzeros. *)
let o_n = Complexity.linear "n"
let o_n2 = Complexity.quadratic "n"
let o_n3 = Complexity.cubic "n"
let o_nb = Complexity.mul o_n (Complexity.linear "b")
let o_nb2 = Complexity.mul o_nb (Complexity.linear "b")
let o_nnz = Complexity.linear "nnz"

let dense_matrix =
  Concept.make ~params:[ "M" ] "DenseMatrix"
    ~doc:"square real matrix with the three served operations"
    [
      Concept.signature "matvec" [ v "M"; n "rvec" ] (n "rvec");
      Concept.signature "matmul" [ v "M"; v "M" ] (v "M");
      Concept.signature "solve" [ v "M"; n "rvec" ] (n "rvec");
      Concept.axiom "linearity" ~vars:[ "A"; "x"; "y" ]
        "matvec(A, x + y) = matvec(A, x) + matvec(A, y)";
      Concept.axiom "solve_inverts" ~vars:[ "A"; "b" ]
        "matvec(A, solve(A, b)) = b";
      Concept.complexity "matvec" o_n2;
      Concept.complexity "matmul" o_n3;
      Concept.complexity "solve" o_n3;
    ]

let symmetric_matrix =
  Concept.make ~params:[ "M" ] "SymmetricMatrix"
    ~doc:"A(i,j) = A(j,i); packed half storage"
    ~refines:[ ("DenseMatrix", [ v "M" ]) ]
    [
      Concept.axiom "symmetry" ~vars:[ "A"; "i"; "j" ] "A(i,j) = A(j,i)";
      Concept.complexity "matvec" o_n2;
    ]

let triangular_matrix =
  Concept.make ~params:[ "M" ] "TriangularMatrix"
    ~doc:"one dead triangle; solve by substitution"
    ~refines:[ ("DenseMatrix", [ v "M" ]) ]
    [
      Concept.axiom "triangularity" ~vars:[ "A"; "i"; "j" ]
        "i < j implies A(i,j) = 0 (lower) or i > j implies A(i,j) = 0 (upper)";
      Concept.complexity "matvec" o_n2;
      Concept.complexity "solve" o_n2;
    ]

let banded_matrix =
  Concept.make ~params:[ "M" ] "BandedMatrix"
    ~doc:"nonzeros within b of the diagonal"
    ~refines:[ ("DenseMatrix", [ v "M" ]) ]
    [
      Concept.axiom "bandedness" ~vars:[ "A"; "i"; "j" ]
        "|i - j| > b implies A(i,j) = 0";
      Concept.complexity "matvec" o_nb;
      Concept.complexity "matmul" o_nb2;
    ]

let sparse_matrix =
  Concept.make ~params:[ "M" ] "SparseMatrix"
    ~doc:"compressed rows over nnz stored entries"
    ~refines:[ ("DenseMatrix", [ v "M" ]) ]
    [
      Concept.axiom "sparsity" ~vars:[ "A" ]
        "unstored entries of A read as 0";
      Concept.complexity "matvec" o_nnz;
    ]

let diagonal_matrix =
  Concept.make ~params:[ "M" ] "DiagonalMatrix"
    ~doc:"the most refined structure: everything is O(n)"
    ~refines:
      [
        ("BandedMatrix", [ v "M" ]);
        ("TriangularMatrix", [ v "M" ]);
        ("SymmetricMatrix", [ v "M" ]);
      ]
    [
      Concept.axiom "diagonality" ~vars:[ "A"; "i"; "j" ]
        "i <> j implies A(i,j) = 0";
      Concept.complexity "matvec" o_n;
      Concept.complexity "matmul" o_n;
      Concept.complexity "solve" o_n;
    ]

let concepts =
  [
    dense_matrix;
    symmetric_matrix;
    triangular_matrix;
    banded_matrix;
    sparse_matrix;
    diagonal_matrix;
  ]

let carriers = [ "dmat"; "diagmat"; "bandmat"; "trimat"; "symmat"; "csrmat" ]

(* Checked claims: what each carrier's kernels actually achieve, per
   concept requirement (ancestor models keep the ancestor's bound where
   the refined one is variable-incomparable). *)
let dense_bounds =
  [ ("matvec", o_n2); ("matmul", o_n3); ("solve", o_n3) ]

let models_of_carrier =
  [
    ("dmat", [ ("DenseMatrix", dense_bounds) ]);
    ( "symmat",
      [
        ("SymmetricMatrix", [ ("matvec", o_n2) ]);
        ("DenseMatrix", dense_bounds);
      ] );
    ( "trimat",
      [
        ("TriangularMatrix", [ ("matvec", o_n2); ("solve", o_n2) ]);
        ("DenseMatrix", dense_bounds);
      ] );
    ( "bandmat",
      [
        ("BandedMatrix", [ ("matvec", o_nb); ("matmul", o_nb2) ]);
        ("DenseMatrix", dense_bounds);
      ] );
    ( "csrmat",
      [
        ("SparseMatrix", [ ("matvec", o_nnz) ]);
        ("DenseMatrix", dense_bounds);
      ] );
    ( "diagmat",
      [
        ( "DiagonalMatrix",
          [ ("matvec", o_n); ("matmul", o_n); ("solve", o_n) ] );
        ("BandedMatrix", [ ("matvec", o_n); ("matmul", o_n) ]);
        ("TriangularMatrix", [ ("matvec", o_n); ("solve", o_n) ]);
        ("SymmetricMatrix", [ ("matvec", o_n) ]);
        ("DenseMatrix", [ ("matvec", o_n); ("matmul", o_n); ("solve", o_n) ]);
      ] );
  ]

let axioms_of = function
  | "DenseMatrix" -> [ "linearity"; "solve_inverts" ]
  | "SymmetricMatrix" -> [ "symmetry" ]
  | "TriangularMatrix" -> [ "triangularity" ]
  | "BandedMatrix" -> [ "bandedness" ]
  | "SparseMatrix" -> [ "sparsity" ]
  | "DiagonalMatrix" -> [ "diagonality" ]
  | _ -> []

let declare reg =
  match Registry.find_concept reg "DenseMatrix" with
  | Some _ -> () (* already declared into this registry *)
  | None ->
    List.iter (Registry.declare_concept reg) concepts;
    (match Registry.find_type reg "rvec" with
    | None -> Registry.declare_type reg "rvec" ~doc:"real vector"
    | Some _ -> ());
    List.iter
      (fun c ->
        Registry.declare_type reg c;
        Registry.declare_op reg "matvec" [ n c; n "rvec" ] (n "rvec");
        Registry.declare_op reg "matmul" [ n c; n c ] (n c);
        Registry.declare_op reg "solve" [ n c; n "rvec" ] (n "rvec"))
      carriers;
    List.iter
      (fun (c, models) ->
        List.iter
          (fun (concept, complexity) ->
            Registry.declare_model reg concept [ n c ]
              ~axioms:(axioms_of concept) ~complexity)
          models)
      models_of_carrier
