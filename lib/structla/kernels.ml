(* The kernels: one specialised implementation per structure the
   taxonomy knows, plus the naive dense references retained as qcheck
   equivalence oracles (the PR-2 *_reference idiom).

   Next to each kernel lives its exact step count — the number of
   inner-loop multiply-accumulate visits the kernel performs, computed
   from the packed structure alone. Step counts are what bench s6 gates
   on (they are quota-independent, unlike wall time) and what the
   dispatcher charges against the request budget, so the asymptotic
   claims in the concept declarations are checked numbers, not prose.

   Every dimension error names the actual mismatched shapes
   ("matvec: 3x4 * 5"), asserted verbatim by the tests. *)

let bad fmt = Printf.ksprintf invalid_arg fmt

let check_vec op (rows, cols) v =
  if cols <> Array.length v then
    bad "%s: %dx%d * %d" op rows cols (Array.length v)

(* ------------------------------------------------------------------ *)
(* Dense references (the oracles)                                      *)
(* ------------------------------------------------------------------ *)

let matvec_reference (m : Mat.dense) v =
  check_vec "matvec" (m.Mat.n_rows, m.Mat.n_cols) v;
  let n = m.Mat.n_cols in
  Array.init m.Mat.n_rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        s := !s +. (m.Mat.d.((i * n) + j) *. v.(j))
      done;
      !s)

let matmul_reference (a : Mat.dense) (b : Mat.dense) =
  if a.Mat.n_cols <> b.Mat.n_rows then
    bad "matmul: %dx%d * %dx%d" a.Mat.n_rows a.Mat.n_cols b.Mat.n_rows
      b.Mat.n_cols;
  let m = a.Mat.n_rows and k = a.Mat.n_cols and n = b.Mat.n_cols in
  let c = Mat.dense_create m n in
  for i = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let av = a.Mat.d.((i * k) + kk) in
      if av <> 0.0 then
        for j = 0 to n - 1 do
          c.Mat.d.((i * n) + j) <-
            c.Mat.d.((i * n) + j) +. (av *. b.Mat.d.((kk * n) + j))
        done
    done
  done;
  c

(* Gaussian elimination with partial pivoting; the dense solve oracle. *)
let solve_reference (m : Mat.dense) b =
  if m.Mat.n_rows <> m.Mat.n_cols then
    bad "solve: %dx%d not square" m.Mat.n_rows m.Mat.n_cols;
  check_vec "solve" (m.Mat.n_rows, m.Mat.n_cols) b;
  let n = m.Mat.n_rows in
  let a = Array.copy m.Mat.d in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.((r * n) + col) > Float.abs a.((!piv * n) + col) then
        piv := r
    done;
    if a.((!piv * n) + col) = 0.0 then bad "solve: singular at column %d" col;
    if !piv <> col then begin
      for j = 0 to n - 1 do
        let t = a.((col * n) + j) in
        a.((col * n) + j) <- a.((!piv * n) + j);
        a.((!piv * n) + j) <- t
      done;
      let t = x.(col) in
      x.(col) <- x.(!piv);
      x.(!piv) <- t
    end;
    for r = col + 1 to n - 1 do
      let f = a.((r * n) + col) /. a.((col * n) + col) in
      if f <> 0.0 then begin
        for j = col to n - 1 do
          a.((r * n) + j) <- a.((r * n) + j) -. (f *. a.((col * n) + j))
        done;
        x.(r) <- x.(r) -. (f *. x.(col))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. a.((i * n) + i)
  done;
  x

(* ------------------------------------------------------------------ *)
(* Specialised matvec                                                  *)
(* ------------------------------------------------------------------ *)

let matvec_diagonal (m : Mat.diagonal) v =
  check_vec "matvec" (m.Mat.dg_n, m.Mat.dg_n) v;
  Array.init m.Mat.dg_n (fun i -> m.Mat.dg.(i) *. v.(i))

let matvec_banded (m : Mat.banded) v =
  let n = m.Mat.bd_n and lo = m.Mat.bd_lo and hi = m.Mat.bd_hi in
  check_vec "matvec" (n, n) v;
  let w = lo + hi + 1 in
  Array.init n (fun i ->
      let s = ref 0.0 in
      for j = max 0 (i - lo) to min (n - 1) (i + hi) do
        s := !s +. (m.Mat.bd.((i * w) + (j - i + lo)) *. v.(j))
      done;
      !s)

let matvec_triangular (m : Mat.triangular) v =
  let n = m.Mat.tr_n in
  check_vec "matvec" (n, n) v;
  Array.init n (fun i ->
      let s = ref 0.0 in
      let j0, j1 = if m.Mat.tr_upper then (i, n - 1) else (0, i) in
      for j = j0 to j1 do
        s := !s +. (m.Mat.tr.((i * n) + j) *. v.(j))
      done;
      !s)

(* Each stored element a_ij (i > j) feeds both y_i and y_j: one visit,
   two multiply-accumulates — the step count is the n(n+1)/2 visits. *)
let matvec_symmetric (m : Mat.symmetric) v =
  let n = m.Mat.sy_n in
  check_vec "matvec" (n, n) v;
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let row = i * (i + 1) / 2 in
    y.(i) <- y.(i) +. (m.Mat.sy.(row + i) *. v.(i));
    for j = 0 to i - 1 do
      let x = m.Mat.sy.(row + j) in
      y.(i) <- y.(i) +. (x *. v.(j));
      y.(j) <- y.(j) +. (x *. v.(i))
    done
  done;
  y

let matvec_csr (m : Mat.csr) v =
  check_vec "matvec" (m.Mat.cs_rows, m.Mat.cs_cols) v;
  Array.init m.Mat.cs_rows (fun i ->
      let s = ref 0.0 in
      for p = m.Mat.cs_ptr.(i) to m.Mat.cs_ptr.(i + 1) - 1 do
        s := !s +. (m.Mat.cs_val.(p) *. v.(m.Mat.cs_idx.(p)))
      done;
      !s)

let matvec_dense = matvec_reference

(* ------------------------------------------------------------------ *)
(* Specialised matmul (square, structure-closed products)              *)
(* ------------------------------------------------------------------ *)

let matmul_diagonal (a : Mat.diagonal) (b : Mat.diagonal) =
  if a.Mat.dg_n <> b.Mat.dg_n then
    bad "matmul: %dx%d * %dx%d" a.Mat.dg_n a.Mat.dg_n b.Mat.dg_n b.Mat.dg_n;
  { Mat.dg_n = a.Mat.dg_n;
    dg = Array.init a.Mat.dg_n (fun i -> a.Mat.dg.(i) *. b.Mat.dg.(i)) }

(* The band widens: (lo_a + lo_b, hi_a + hi_b), clamped to the order. *)
let matmul_banded (a : Mat.banded) (b : Mat.banded) =
  if a.Mat.bd_n <> b.Mat.bd_n then
    bad "matmul: %dx%d * %dx%d" a.Mat.bd_n a.Mat.bd_n b.Mat.bd_n b.Mat.bd_n;
  let n = a.Mat.bd_n in
  let lo = min (n - 1) (a.Mat.bd_lo + b.Mat.bd_lo) in
  let hi = min (n - 1) (a.Mat.bd_hi + b.Mat.bd_hi) in
  let w = lo + hi + 1 in
  let wa = a.Mat.bd_lo + a.Mat.bd_hi + 1 in
  let wb = b.Mat.bd_lo + b.Mat.bd_hi + 1 in
  let c = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    for j = max 0 (i - lo) to min (n - 1) (i + hi) do
      let s = ref 0.0 in
      let k0 = max (max 0 (i - a.Mat.bd_lo)) (max 0 (j - b.Mat.bd_hi)) in
      let k1 =
        min (min (n - 1) (i + a.Mat.bd_hi)) (min (n - 1) (j + b.Mat.bd_lo))
      in
      for k = k0 to k1 do
        s :=
          !s
          +. a.Mat.bd.((i * wa) + (k - i + a.Mat.bd_lo))
             *. b.Mat.bd.((k * wb) + (j - k + b.Mat.bd_lo))
      done;
      c.((i * w) + (j - i + lo)) <- !s
    done
  done;
  { Mat.bd_n = n; bd_lo = lo; bd_hi = hi; bd = c }

let matmul_dense = matmul_reference

(* ------------------------------------------------------------------ *)
(* Specialised solve                                                   *)
(* ------------------------------------------------------------------ *)

let solve_diagonal (m : Mat.diagonal) b =
  check_vec "solve" (m.Mat.dg_n, m.Mat.dg_n) b;
  Array.iteri
    (fun i x -> if x = 0.0 then bad "solve: singular at column %d" i)
    m.Mat.dg;
  Array.init m.Mat.dg_n (fun i -> b.(i) /. m.Mat.dg.(i))

let solve_triangular (m : Mat.triangular) b =
  let n = m.Mat.tr_n in
  check_vec "solve" (n, n) b;
  let x = Array.copy b in
  let diag i = m.Mat.tr.((i * n) + i) in
  for i = 0 to n - 1 do
    if diag i = 0.0 then bad "solve: singular at column %d" i
  done;
  if m.Mat.tr_upper then
    for i = n - 1 downto 0 do
      let s = ref x.(i) in
      for j = i + 1 to n - 1 do
        s := !s -. (m.Mat.tr.((i * n) + j) *. x.(j))
      done;
      x.(i) <- !s /. diag i
    done
  else
    for i = 0 to n - 1 do
      let s = ref x.(i) in
      for j = 0 to i - 1 do
        s := !s -. (m.Mat.tr.((i * n) + j) *. x.(j))
      done;
      x.(i) <- !s /. diag i
    done;
  x

let solve_dense = solve_reference

(* ------------------------------------------------------------------ *)
(* Exact step counts                                                   *)
(* ------------------------------------------------------------------ *)

(* Inner-loop visits, computed from the structure parameters — exact
   trip counts of the loops above, not estimates. *)

let band_row_width ~n ~lo ~hi i = min (n - 1) (i + hi) - max 0 (i - lo) + 1

let matvec_steps = function
  | Mat.Dense m -> m.Mat.n_rows * m.Mat.n_cols
  | Mat.Diagonal m -> m.Mat.dg_n
  | Mat.Banded m ->
    let t = ref 0 in
    for i = 0 to m.Mat.bd_n - 1 do
      t := !t + band_row_width ~n:m.Mat.bd_n ~lo:m.Mat.bd_lo ~hi:m.Mat.bd_hi i
    done;
    !t
  | Mat.Triangular m -> m.Mat.tr_n * (m.Mat.tr_n + 1) / 2
  | Mat.Symmetric m -> m.Mat.sy_n * (m.Mat.sy_n + 1) / 2
  | Mat.Csr m -> Mat.nnz_csr m

let matmul_steps = function
  | Mat.Dense m -> m.Mat.n_rows * m.Mat.n_cols * m.Mat.n_cols
  | Mat.Diagonal m -> m.Mat.dg_n
  | Mat.Banded m ->
    let n = m.Mat.bd_n in
    let lo = min (n - 1) (2 * m.Mat.bd_lo)
    and hi = min (n - 1) (2 * m.Mat.bd_hi) in
    let t = ref 0 in
    for i = 0 to n - 1 do
      for j = max 0 (i - lo) to min (n - 1) (i + hi) do
        let k0 = max (max 0 (i - m.Mat.bd_lo)) (max 0 (j - m.Mat.bd_hi)) in
        let k1 =
          min
            (min (n - 1) (i + m.Mat.bd_hi))
            (min (n - 1) (j + m.Mat.bd_lo))
        in
        if k1 >= k0 then t := !t + (k1 - k0 + 1)
      done
    done;
    !t
  | (Mat.Triangular _ | Mat.Symmetric _ | Mat.Csr _) as m ->
    (* served by the dense fallback kernel *)
    let r, c = Mat.dims m in
    r * c * c

let solve_steps = function
  | Mat.Diagonal m -> m.Mat.dg_n
  | Mat.Triangular m -> m.Mat.tr_n * (m.Mat.tr_n + 1) / 2
  | (Mat.Dense _ | Mat.Banded _ | Mat.Symmetric _ | Mat.Csr _) as m ->
    (* elimination + back substitution on the dense fallback *)
    let n, _ = Mat.dims m in
    (n * n * n / 3) + (n * n)
