(** The matrix-structure concept taxonomy.

    Six concepts — [DenseMatrix] at the root, [SymmetricMatrix],
    [TriangularMatrix], [BandedMatrix] and [SparseMatrix] refining it,
    and [DiagonalMatrix] refining banded, triangular and symmetric at
    once — each carrying the complexity guarantees its kernels meet
    (O(n) diagonal matvec, O(n·b) banded, O(nnz) sparse, O(n{^2})
    dense). One carrier type per packed representation ([dmat],
    [diagmat], [bandmat], [trimat], [symmat], [csrmat]), each declared
    as a checked model of its structure and of every ancestor
    structure, so nominal overload resolution can rank kernels by
    refinement depth. *)

val concepts : Gp_concepts.Concept.t list
(** In declaration order (roots first). *)

val carriers : string list
(** The six registry type names, in {!Mat.carrier} order. *)

val declare : Gp_concepts.Registry.t -> unit
(** Declare the concepts, carrier types, per-carrier operations and all
    ancestor models into [reg]. Idempotent: a registry that already
    knows [DenseMatrix] is left untouched. *)
