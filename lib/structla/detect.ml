(* Automatic structure detection (the Stepanov release-note story: the
   library inspects the concrete matrix and picks the most refined
   structure it satisfies, and the kernel selection follows).

   The classification is sound by construction — every branch goes
   through the strict Mat packers, which refuse a representation the
   matrix does not satisfy exactly — and deterministic: one pass
   computes the bandwidths, symmetry and the nonzero count, then the
   most refined applicable structure wins in a fixed priority order. *)

module Tel = Gp_telemetry.Tel

type profile = {
  pr_lo : int; (* max sub-diagonal distance of a nonzero *)
  pr_hi : int; (* max super-diagonal distance of a nonzero *)
  pr_nnz : int;
  pr_symmetric : bool;
}

let profile (m : Mat.dense) =
  let n = m.Mat.n_rows in
  let lo = ref 0 and hi = ref 0 and nnz = ref 0 and sym = ref true in
  for i = 0 to n - 1 do
    for j = 0 to m.Mat.n_cols - 1 do
      let x = Mat.dense_get m i j in
      if x <> 0.0 then begin
        incr nnz;
        if i > j then lo := max !lo (i - j) else hi := max !hi (j - i)
      end;
      if j < n && j < i && x <> Mat.dense_get m j i then sym := false
    done
  done;
  { pr_lo = !lo; pr_hi = !hi; pr_nnz = !nnz;
    pr_symmetric = (!sym && m.Mat.n_rows = m.Mat.n_cols) }

(* Priority: diagonal, then triangular, then symmetric, then banded
   (band no wider than half the order), then CSR (at most quarter
   fill), then dense. The packers re-verify every claim. *)
let classify_quiet (m : Mat.dense) =
  let square = m.Mat.n_rows = m.Mat.n_cols in
  let n = m.Mat.n_rows in
  let p = profile m in
  let try_ opt k = match opt with Some r -> Some r | None -> k () in
  let attempt =
    if not square then
      if p.pr_nnz * 4 <= m.Mat.n_rows * m.Mat.n_cols then
        Some (Mat.Csr (Mat.pack_csr m))
      else None
    else
      try_
        (if p.pr_lo = 0 && p.pr_hi = 0 then
           Option.map (fun d -> Mat.Diagonal d) (Mat.pack_diagonal m)
         else None)
        (fun () ->
          try_
            (if p.pr_lo = 0 || p.pr_hi = 0 then
               Option.map (fun t -> Mat.Triangular t) (Mat.pack_triangular m)
             else None)
            (fun () ->
              try_
                (if p.pr_symmetric then
                   Option.map (fun s -> Mat.Symmetric s) (Mat.pack_symmetric m)
                 else None)
                (fun () ->
                  try_
                    (if p.pr_lo + p.pr_hi + 1 <= n / 2 then
                       Option.map
                         (fun b -> Mat.Banded b)
                         (Mat.pack_banded ~lo:p.pr_lo ~hi:p.pr_hi m)
                     else None)
                    (fun () ->
                      if p.pr_nnz * 4 <= n * n then
                        Some (Mat.Csr (Mat.pack_csr m))
                      else None))))
  in
  match attempt with Some r -> r | None -> Mat.Dense m

let classify m =
  Tel.with_span ~name:"structla.detect" @@ fun () ->
  let r = classify_quiet m in
  Tel.count "gp_structla_detect_total" 1
    ~labels:[ ("structure", Mat.structure_name r) ];
  Tel.attr "structure" (Mat.structure_name r);
  r
