(* Matrix representations for the structure-aware kernels.

   One packed representation per structure the concept taxonomy knows
   about, plus the row-major dense fallback every structure can be
   expanded into. Packing never rounds: [to_dense] reproduces the source
   matrix bit-for-bit, which is what makes "the detector never claims a
   structure the matrix doesn't satisfy" a checkable equality.

   Generation is deterministic per (structure, n, seed): the serving
   layer ships only those three scalars over the wire and both the
   server and the replayer regenerate the same matrix, so response
   fingerprints stay comparable across processes. *)

type dense = { n_rows : int; n_cols : int; d : float array } (* row-major *)

type diagonal = { dg_n : int; dg : float array }

(* Row-packed band storage: row [i] keeps columns [i-lo .. i+hi] at
   offset [i*(lo+hi+1) + (j-i+lo)]; out-of-range slots stay 0. *)
type banded = { bd_n : int; bd_lo : int; bd_hi : int; bd : float array }

(* Full row-major storage with the dead triangle kept zero: the kernels
   iterate only the live triangle, so the step count — not the storage —
   carries the saving. *)
type triangular = { tr_n : int; tr_upper : bool; tr : float array }

(* Packed lower triangle: row [i] holds its first [i+1] entries at
   offset [i*(i+1)/2]. *)
type symmetric = { sy_n : int; sy : float array }

type csr = {
  cs_rows : int;
  cs_cols : int;
  cs_ptr : int array; (* length rows+1 *)
  cs_idx : int array;
  cs_val : float array;
}

type t =
  | Dense of dense
  | Diagonal of diagonal
  | Banded of banded
  | Triangular of triangular
  | Symmetric of symmetric
  | Csr of csr

(* ------------------------------------------------------------------ *)
(* Dense basics                                                        *)
(* ------------------------------------------------------------------ *)

let dense_create n_rows n_cols =
  { n_rows; n_cols; d = Array.make (n_rows * n_cols) 0.0 }

let dense_init n_rows n_cols f =
  let m = dense_create n_rows n_cols in
  for i = 0 to n_rows - 1 do
    for j = 0 to n_cols - 1 do
      m.d.((i * n_cols) + j) <- f i j
    done
  done;
  m

let dense_get m i j = m.d.((i * m.n_cols) + j)
let dense_set m i j x = m.d.((i * m.n_cols) + j) <- x

let dense_equal a b =
  a.n_rows = b.n_rows && a.n_cols = b.n_cols && a.d = b.d

let dense_close ?(eps = 1e-9) a b =
  a.n_rows = b.n_rows && a.n_cols = b.n_cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < eps) a.d b.d

let vec_close ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < eps) a b

(* ------------------------------------------------------------------ *)
(* Structure names and registry carriers                               *)
(* ------------------------------------------------------------------ *)

let structure_name = function
  | Dense _ -> "dense"
  | Diagonal _ -> "diagonal"
  | Banded _ -> "banded"
  | Triangular _ -> "triangular"
  | Symmetric _ -> "symmetric"
  | Csr _ -> "csr"

let structure_names =
  [ "dense"; "diagonal"; "banded"; "triangular"; "symmetric"; "csr" ]

let known_structure s = List.mem s structure_names

(* The registry type name each representation checks against: one ground
   carrier per structure, declared by Decls. *)
let carrier = function
  | Dense _ -> "dmat"
  | Diagonal _ -> "diagmat"
  | Banded _ -> "bandmat"
  | Triangular _ -> "trimat"
  | Symmetric _ -> "symmat"
  | Csr _ -> "csrmat"

let dims = function
  | Dense m -> (m.n_rows, m.n_cols)
  | Diagonal m -> (m.dg_n, m.dg_n)
  | Banded m -> (m.bd_n, m.bd_n)
  | Triangular m -> (m.tr_n, m.tr_n)
  | Symmetric m -> (m.sy_n, m.sy_n)
  | Csr m -> (m.cs_rows, m.cs_cols)

let nnz_csr m = m.cs_ptr.(m.cs_rows)

(* ------------------------------------------------------------------ *)
(* Expansion and packing                                               *)
(* ------------------------------------------------------------------ *)

let to_dense = function
  | Dense m -> m
  | Diagonal { dg_n = n; dg } ->
    dense_init n n (fun i j -> if i = j then dg.(i) else 0.0)
  | Banded { bd_n = n; bd_lo = lo; bd_hi = hi; bd } ->
    let w = lo + hi + 1 in
    dense_init n n (fun i j ->
        if j >= i - lo && j <= i + hi then bd.((i * w) + (j - i + lo))
        else 0.0)
  | Triangular { tr_n = n; tr; _ } ->
    dense_init n n (fun i j -> tr.((i * n) + j))
  | Symmetric { sy_n = n; sy } ->
    dense_init n n (fun i j ->
        let i, j = if i >= j then (i, j) else (j, i) in
        sy.((i * (i + 1) / 2) + j))
  | Csr { cs_rows; cs_cols; cs_ptr; cs_idx; cs_val } ->
    let m = dense_create cs_rows cs_cols in
    for i = 0 to cs_rows - 1 do
      for p = cs_ptr.(i) to cs_ptr.(i + 1) - 1 do
        m.d.((i * cs_cols) + cs_idx.(p)) <- cs_val.(p)
      done
    done;
    m

(* Packers: [None] when the dense source does not satisfy the structure
   exactly — the detector's contract depends on this strictness. *)

let pack_diagonal m =
  if m.n_rows <> m.n_cols then None
  else
    let n = m.n_rows in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && dense_get m i j <> 0.0 then ok := false
      done
    done;
    if not !ok then None
    else Some { dg_n = n; dg = Array.init n (fun i -> dense_get m i i) }

let pack_banded ~lo ~hi m =
  if m.n_rows <> m.n_cols || lo < 0 || hi < 0 then None
  else
    let n = m.n_rows in
    let w = lo + hi + 1 in
    let bd = Array.make (n * w) 0.0 in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let x = dense_get m i j in
        if j >= i - lo && j <= i + hi then bd.((i * w) + (j - i + lo)) <- x
        else if x <> 0.0 then ok := false
      done
    done;
    if !ok then Some { bd_n = n; bd_lo = lo; bd_hi = hi; bd } else None

let pack_triangular m =
  if m.n_rows <> m.n_cols then None
  else
    let n = m.n_rows in
    let zero_below = ref true and zero_above = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i > j && dense_get m i j <> 0.0 then zero_below := false;
        if i < j && dense_get m i j <> 0.0 then zero_above := false
      done
    done;
    if !zero_below || !zero_above then
      Some { tr_n = n; tr_upper = !zero_below; tr = Array.copy m.d }
    else None

let pack_symmetric m =
  if m.n_rows <> m.n_cols then None
  else
    let n = m.n_rows in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        if dense_get m i j <> dense_get m j i then ok := false
      done
    done;
    if not !ok then None
    else
      let sy = Array.make (n * (n + 1) / 2) 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to i do
          sy.((i * (i + 1) / 2) + j) <- dense_get m i j
        done
      done;
      Some { sy_n = n; sy }

(* Always succeeds: any matrix has a CSR form. *)
let pack_csr m =
  let nnz = Array.fold_left (fun a x -> if x <> 0.0 then a + 1 else a) 0 m.d in
  let cs_ptr = Array.make (m.n_rows + 1) 0 in
  let cs_idx = Array.make (max nnz 1) 0 in
  let cs_val = Array.make (max nnz 1) 0.0 in
  let p = ref 0 in
  for i = 0 to m.n_rows - 1 do
    for j = 0 to m.n_cols - 1 do
      let x = dense_get m i j in
      if x <> 0.0 then begin
        cs_idx.(!p) <- j;
        cs_val.(!p) <- x;
        incr p
      end
    done;
    cs_ptr.(i + 1) <- !p
  done;
  { cs_rows = m.n_rows; cs_cols = m.n_cols; cs_ptr; cs_idx; cs_val }

(* Conversions the overload candidates use: a kernel guarded by a
   concept may legitimately receive any representation whose carrier
   models that concept (e.g. the banded kernel applied to a diagonal
   matrix when no diagonal candidate is registered). *)

let as_diagonal = function
  | Diagonal m -> Some m
  | m -> pack_diagonal (to_dense m)

let as_banded = function
  | Banded m -> Some m
  | Diagonal { dg_n; dg } ->
    Some { bd_n = dg_n; bd_lo = 0; bd_hi = 0; bd = Array.copy dg }
  | m ->
    let d = to_dense m in
    if d.n_rows <> d.n_cols then None
    else
      let lo = ref 0 and hi = ref 0 in
      for i = 0 to d.n_rows - 1 do
        for j = 0 to d.n_cols - 1 do
          if dense_get d i j <> 0.0 then
            if i > j then lo := max !lo (i - j) else hi := max !hi (j - i)
        done
      done;
      pack_banded ~lo:!lo ~hi:!hi d

let as_triangular = function
  | Triangular m -> Some m
  | m -> pack_triangular (to_dense m)

let as_symmetric = function
  | Symmetric m -> Some m
  | m -> pack_symmetric (to_dense m)

let as_csr = function Csr m -> m | m -> pack_csr (to_dense m)

(* ------------------------------------------------------------------ *)
(* Deterministic generation                                            *)
(* ------------------------------------------------------------------ *)

(* All generated matrices are made strictly diagonally dominant
   (a_ii = |row| sum + 1), so every structure is also solve-safe: the
   same (structure, n, seed) triple backs matvec, matmul and solve
   requests without a singularity caveat. *)

let dominate m =
  let n = min m.n_rows m.n_cols in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for j = 0 to m.n_cols - 1 do
      if j <> i then s := !s +. Float.abs (dense_get m i j)
    done;
    dense_set m i i (!s +. 1.0)
  done;
  m

let rand st = (Random.State.float st 2.0) -. 1.0

let generate_dense ~structure ~n ~seed =
  if n < 1 then invalid_arg (Printf.sprintf "Mat.generate: n=%d < 1" n);
  let st = Random.State.make [| 0x57ac; seed; n; Hashtbl.hash structure |] in
  let bw = 4 in
  match structure with
  | "dense" -> Some (dominate (dense_init n n (fun _ _ -> rand st)))
  | "diagonal" ->
    Some (dense_init n n (fun i j -> if i = j then 1.0 +. Float.abs (rand st) else 0.0))
  | "banded" ->
    Some
      (dominate
         (dense_init n n (fun i j ->
              if abs (i - j) <= bw then rand st else 0.0)))
  | "triangular" ->
    Some (dominate (dense_init n n (fun i j -> if j >= i then rand st else 0.0)))
  | "symmetric" ->
    let half = dense_init n n (fun i j -> if j <= i then rand st else 0.0) in
    Some
      (dominate
         (dense_init n n (fun i j ->
              if j <= i then dense_get half i j else dense_get half j i)))
  | "csr" ->
    (* ~5% fill plus the dominant diagonal: sparse at every n >= 24 *)
    Some
      (dominate
         (dense_init n n (fun _ _ ->
              if Random.State.int st 20 = 0 then rand st else 0.0)))
  | _ -> None

let generate_vec ~n ~seed =
  let st = Random.State.make [| 0xb0b; seed; n |] in
  Array.init n (fun _ -> rand st)

(* ------------------------------------------------------------------ *)
(* Checksums                                                           *)
(* ------------------------------------------------------------------ *)

(* Digest of the exact IEEE bit patterns: float-deterministic kernels
   give replay-stable checksums. *)
let checksum_vec v =
  let b = Bytes.create (8 * Array.length v) in
  Array.iteri
    (fun i x -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float x))
    v;
  Digest.to_hex (Digest.bytes b)

let checksum_dense m = checksum_vec m.d

let pp ppf m =
  let r, c = dims m in
  Fmt.pf ppf "%s %dx%d" (structure_name m) r c
