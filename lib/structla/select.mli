(** Concept-guided kernel selection.

    Three {!Gp_concepts.Overload} generics — matvec, matmul, solve —
    with one candidate per specialised kernel, guarded by the concept
    the kernel requires. Resolution is nominal against the argument's
    {!Mat.carrier} type and the most refined matching guard wins, so a
    diagonal matrix is served by the O(n) kernels, a banded one by the
    O(n·b) matvec with a dense-solve fallback, and so on.

    The registry must contain the {!Decls.declare} world. *)

type Gp_concepts.Overload.dyn +=
  | Dmat of Mat.t
  | Dvec of float array

type t = {
  g_matvec : Gp_concepts.Overload.generic;
  g_matmul : Gp_concepts.Overload.generic;
  g_solve : Gp_concepts.Overload.generic;
}

type op = Matvec | Matmul | Solve

val op_name : op -> string
val create : unit -> t
val generic : t -> op -> Gp_concepts.Overload.generic

val resolve : Gp_concepts.Registry.t -> t -> op -> Mat.t -> Gp_concepts.Overload.resolution
(** Resolution only — what the bench times as dispatch overhead and
    what the ambiguity/miss tests inspect. *)

val matvec :
  Gp_concepts.Registry.t -> t -> Mat.t -> float array ->
  (string * float array, string) result
(** [Ok (kernel_name, y)]; [Error] renders the resolution diagnostic on
    ambiguity or no match. Emits a [structla.matvec] span and a
    [gp_structla_kernel_total] counter labelled by winning kernel (the
    other operations likewise). *)

val matmul :
  Gp_concepts.Registry.t -> t -> Mat.t -> Mat.t -> (string * Mat.t, string) result

val solve :
  Gp_concepts.Registry.t -> t -> Mat.t -> float array ->
  (string * float array, string) result
