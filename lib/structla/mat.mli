(** Matrix representations for structure-aware linear algebra.

    One packed representation per structure in the concept taxonomy
    (dense, diagonal, banded, triangular, symmetric, sparse CSR).
    Packing is exact — {!to_dense} reproduces the packed source
    bit-for-bit — which makes detector soundness a checkable equality.
    Generation is deterministic per [(structure, n, seed)], so the
    serving layer ships only those scalars over the wire and the
    replayer regenerates the identical matrix. *)

type dense = { n_rows : int; n_cols : int; d : float array }
(** Row-major. *)

type diagonal = { dg_n : int; dg : float array }

type banded = { bd_n : int; bd_lo : int; bd_hi : int; bd : float array }
(** Row-packed band storage, width [lo+hi+1] per row. *)

type triangular = { tr_n : int; tr_upper : bool; tr : float array }
(** Full row-major storage; the dead triangle is zero. *)

type symmetric = { sy_n : int; sy : float array }
(** Packed lower triangle. *)

type csr = {
  cs_rows : int;
  cs_cols : int;
  cs_ptr : int array;
  cs_idx : int array;
  cs_val : float array;
}

type t =
  | Dense of dense
  | Diagonal of diagonal
  | Banded of banded
  | Triangular of triangular
  | Symmetric of symmetric
  | Csr of csr

(** {2 Dense basics} *)

val dense_create : int -> int -> dense
val dense_init : int -> int -> (int -> int -> float) -> dense
val dense_get : dense -> int -> int -> float
val dense_set : dense -> int -> int -> float -> unit
val dense_equal : dense -> dense -> bool
val dense_close : ?eps:float -> dense -> dense -> bool
val vec_close : ?eps:float -> float array -> float array -> bool

(** {2 Structure names and carriers} *)

val structure_name : t -> string
val structure_names : string list
val known_structure : string -> bool

val carrier : t -> string
(** Registry type name the representation checks against (declared by
    {!Decls.declare}): ["dmat"], ["diagmat"], ["bandmat"], ["trimat"],
    ["symmat"] or ["csrmat"]. *)

val dims : t -> int * int
val nnz_csr : csr -> int

(** {2 Expansion and packing} *)

val to_dense : t -> dense

val pack_diagonal : dense -> diagonal option
(** [None] unless the matrix is exactly diagonal; same strictness for
    the other packers. *)

val pack_banded : lo:int -> hi:int -> dense -> banded option
val pack_triangular : dense -> triangular option
val pack_symmetric : dense -> symmetric option
val pack_csr : dense -> csr

val as_diagonal : t -> diagonal option
val as_banded : t -> banded option
val as_triangular : t -> triangular option
val as_symmetric : t -> symmetric option
val as_csr : t -> csr
(** Conversions the overload candidates use: a kernel guarded by a
    concept may receive any representation whose carrier models it. *)

(** {2 Deterministic generation} *)

val generate_dense : structure:string -> n:int -> seed:int -> dense option
(** A dense matrix exhibiting the named structure (strictly diagonally
    dominant, so it is also solve-safe); [None] on an unknown structure
    name. Raises [Invalid_argument] when [n < 1]. *)

val generate_vec : n:int -> seed:int -> float array

(** {2 Checksums} *)

val checksum_vec : float array -> string
(** Digest of the exact IEEE bit patterns — replay-stable. *)

val checksum_dense : dense -> string
val pp : Format.formatter -> t -> unit
