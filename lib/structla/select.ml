(* Concept-guided kernel selection.

   Three generic functions (matvec, matmul, solve), each holding one
   candidate per kernel, guarded by the concept the kernel needs. A
   call resolves nominally against the argument's carrier type and the
   most refined matching guard wins — a diagonal matrix takes the O(n)
   diagonal candidates everywhere, a banded one takes the banded
   matvec/matmul but falls back to the dense solve, and so on. The
   losing-but-matching candidates come back in the resolution, which is
   how the bench shows what forcing the dense kernel would have cost. *)

module Tel = Gp_telemetry.Tel
open Gp_concepts

type Overload.dyn += Dmat of Mat.t | Dvec of float array

type t = {
  g_matvec : Overload.generic;
  g_matmul : Overload.generic;
  g_solve : Overload.generic;
}

type op = Matvec | Matmul | Solve

let op_name = function
  | Matvec -> "matvec"
  | Matmul -> "matmul"
  | Solve -> "solve"

let mat_vec name = function
  | [ Dmat m; Dvec v ] -> (m, v)
  | _ -> invalid_arg (name ^ ": expected (matrix, vector)")

let mat_mat name = function
  | [ Dmat a; Dmat b ] -> (a, b)
  | _ -> invalid_arg (name ^ ": expected (matrix, matrix)")

let need name = function
  | Some x -> x
  | None -> invalid_arg (name ^ ": representation refuses the structure")

(* Candidate bodies: convert to the packed representation the kernel
   wants — the guard guarantees the carrier models the concept, and the
   Mat converters re-verify. *)

let matvec_generic () =
  let g = Overload.create "matvec" in
  let cand name guard pack kern =
    Overload.add_candidate g ~name ~guard (fun args ->
        let m, v = mat_vec name args in
        Dvec (kern (need name (pack m)) v))
  in
  cand "matvec.diagonal" "DiagonalMatrix" Mat.as_diagonal
    Kernels.matvec_diagonal;
  cand "matvec.banded" "BandedMatrix" Mat.as_banded Kernels.matvec_banded;
  cand "matvec.triangular" "TriangularMatrix" Mat.as_triangular
    Kernels.matvec_triangular;
  cand "matvec.symmetric" "SymmetricMatrix" Mat.as_symmetric
    Kernels.matvec_symmetric;
  Overload.add_candidate g ~name:"matvec.csr" ~guard:"SparseMatrix"
    (fun args ->
      let m, v = mat_vec "matvec.csr" args in
      Dvec (Kernels.matvec_csr (Mat.as_csr m) v));
  Overload.add_candidate g ~name:"matvec.dense" ~guard:"DenseMatrix"
    (fun args ->
      let m, v = mat_vec "matvec.dense" args in
      Dvec (Kernels.matvec_dense (Mat.to_dense m) v));
  g

let matmul_generic () =
  let g = Overload.create "matmul" in
  Overload.add_candidate g ~name:"matmul.diagonal" ~guard:"DiagonalMatrix"
    (fun args ->
      let a, b = mat_mat "matmul.diagonal" args in
      Dmat
        (Mat.Diagonal
           (Kernels.matmul_diagonal
              (need "matmul.diagonal" (Mat.as_diagonal a))
              (need "matmul.diagonal" (Mat.as_diagonal b)))));
  Overload.add_candidate g ~name:"matmul.banded" ~guard:"BandedMatrix"
    (fun args ->
      let a, b = mat_mat "matmul.banded" args in
      Dmat
        (Mat.Banded
           (Kernels.matmul_banded
              (need "matmul.banded" (Mat.as_banded a))
              (need "matmul.banded" (Mat.as_banded b)))));
  Overload.add_candidate g ~name:"matmul.dense" ~guard:"DenseMatrix"
    (fun args ->
      let a, b = mat_mat "matmul.dense" args in
      Dmat (Mat.Dense (Kernels.matmul_dense (Mat.to_dense a) (Mat.to_dense b))));
  g

let solve_generic () =
  let g = Overload.create "solve" in
  Overload.add_candidate g ~name:"solve.diagonal" ~guard:"DiagonalMatrix"
    (fun args ->
      let m, b = mat_vec "solve.diagonal" args in
      Dvec (Kernels.solve_diagonal (need "solve.diagonal" (Mat.as_diagonal m)) b));
  Overload.add_candidate g ~name:"solve.triangular" ~guard:"TriangularMatrix"
    (fun args ->
      let m, b = mat_vec "solve.triangular" args in
      Dvec
        (Kernels.solve_triangular
           (need "solve.triangular" (Mat.as_triangular m))
           b));
  Overload.add_candidate g ~name:"solve.dense" ~guard:"DenseMatrix"
    (fun args ->
      let m, b = mat_vec "solve.dense" args in
      Dvec (Kernels.solve_dense (Mat.to_dense m) b));
  g

let create () =
  {
    g_matvec = matvec_generic ();
    g_matmul = matmul_generic ();
    g_solve = solve_generic ();
  }

let generic t = function
  | Matvec -> t.g_matvec
  | Matmul -> t.g_matmul
  | Solve -> t.g_solve

let resolve reg t op m =
  Overload.resolve reg (generic t op) [ Ctype.Named (Mat.carrier m) ]

let selected reg t op m =
  match resolve reg t op m with
  | Overload.Selected (c, _) -> Ok c
  | (Overload.Ambiguous _ | Overload.No_match _) as r ->
    Error
      (Format.asprintf "%s on %s: %a" (op_name op) (Mat.carrier m)
         Overload.pp_resolution r)

let run op_tag reg t gen_args m =
  Tel.with_span ~name:("structla." ^ op_name op_tag) @@ fun () ->
  match selected reg t op_tag m with
  | Error _ as e -> e
  | Ok c ->
    Tel.count "gp_structla_kernel_total" 1
      ~labels:[ ("kernel", c.Overload.cand_name) ];
    Tel.attr "kernel" c.Overload.cand_name;
    Ok (c.Overload.cand_name, c.Overload.cand_impl gen_args)

let matvec reg t m v =
  match run Matvec reg t [ Dmat m; Dvec v ] m with
  | Error _ as e -> e
  | Ok (name, Dvec r) -> Ok (name, r)
  | Ok (name, _) -> Error (name ^ ": candidate returned a non-vector")

let matmul reg t a b =
  match run Matmul reg t [ Dmat a; Dmat b ] a with
  | Error _ as e -> e
  | Ok (name, Dmat r) -> Ok (name, r)
  | Ok (name, _) -> Error (name ^ ": candidate returned a non-matrix")

let solve reg t m b =
  match run Solve reg t [ Dmat m; Dvec b ] m with
  | Error _ as e -> e
  | Ok (name, Dvec r) -> Ok (name, r)
  | Ok (name, _) -> Error (name ^ ": candidate returned a non-vector")
