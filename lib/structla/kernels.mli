(** The structure-specialised kernels and their dense oracles.

    Each specialised kernel computes exactly what the corresponding
    dense reference computes (up to floating-point association in the
    symmetric and solve cases — the qcheck suites compare with a small
    epsilon), while touching only the stored part of its packed
    representation. The [*_steps] functions return the exact inner-loop
    trip count of the kernel that would run for that representation —
    the quota-independent numbers bench s6 gates on and the dispatcher
    charges against request budgets.

    All dimension errors raise [Invalid_argument] naming the actual
    shapes, e.g. ["matvec: 3x4 * 5"] or ["matmul: 3x3 * 4x4"]. *)

(** {2 Dense references (equivalence oracles)} *)

val matvec_reference : Mat.dense -> float array -> float array
val matmul_reference : Mat.dense -> Mat.dense -> Mat.dense

val solve_reference : Mat.dense -> float array -> float array
(** Gaussian elimination with partial pivoting. Raises
    [Invalid_argument] on a non-square or singular system. *)

(** {2 Specialised matvec} *)

val matvec_dense : Mat.dense -> float array -> float array
val matvec_diagonal : Mat.diagonal -> float array -> float array
val matvec_banded : Mat.banded -> float array -> float array
val matvec_triangular : Mat.triangular -> float array -> float array
val matvec_symmetric : Mat.symmetric -> float array -> float array
val matvec_csr : Mat.csr -> float array -> float array

(** {2 Specialised matmul} *)

val matmul_dense : Mat.dense -> Mat.dense -> Mat.dense
val matmul_diagonal : Mat.diagonal -> Mat.diagonal -> Mat.diagonal

val matmul_banded : Mat.banded -> Mat.banded -> Mat.banded
(** The product band widens to [(lo_a + lo_b, hi_a + hi_b)], clamped
    to the order. *)

(** {2 Specialised solve} *)

val solve_dense : Mat.dense -> float array -> float array
val solve_diagonal : Mat.diagonal -> float array -> float array

val solve_triangular : Mat.triangular -> float array -> float array
(** Forward or back substitution depending on [tr_upper]. *)

(** {2 Exact step counts} *)

val matvec_steps : Mat.t -> int
val matmul_steps : Mat.t -> int
val solve_steps : Mat.t -> int
