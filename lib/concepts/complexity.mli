(** Symbolic asymptotic complexity bounds.

    Concepts carry complexity guarantees ("amortized O(1) push_back",
    "O(n log n) sort") and taxonomies compare algorithms by them. A bound
    is a sum of monomials over named size variables; each monomial tracks
    polynomial and logarithmic degree per variable. Constants are
    irrelevant asymptotically and dropped. *)

type t

val constant : t
(** O(1). *)

val linear : string -> t
(** [linear "n"] is O(n). *)

val log_ : string -> t
(** [log_ "n"] is O(log n). *)

val n_log_n : string -> t
(** [n_log_n "n"] is O(n log n). *)

val quadratic : string -> t
val cubic : string -> t

val power : string -> int -> t
(** [power "n" k] is O(n{^ k}). *)

val poly_log : string -> poly:int -> log:int -> t
(** [poly_log "n" ~poly:p ~log:l] is O(n{^ p} log{^ l} n). *)

val add : t -> t -> t
(** Sum of bounds: dominated monomials are absorbed, so
    [add (linear "n") (quadratic "n")] = O(n{^ 2}) while
    [add (linear "n") (linear "m")] = O(n + m). *)

val mul : t -> t -> t
(** Product of bounds: [mul (linear "n") (log_ "n")] = O(n log n). *)

val equal : t -> t -> bool

val leq : t -> t -> bool
(** [leq a b]: [a] grows no faster than [b]. A partial order —
    O(n) and O(m) are incomparable. *)

val compare_growth : t -> t -> int option
(** [Some (-1|0|1)] when comparable, [None] otherwise. *)

val eval : t -> env:(string -> float) -> float
(** Evaluate the bound at concrete sizes: the sum over monomials of
    [Π (env v){^ poly} · (log2 (max 2 (env v))){^ log}]. The log factor
    is clamped below at sizes < 2 so a log term never zeroes a monomial
    at n = 1 — asymptotically invisible, but it keeps small-size
    evaluations positive so curve fitters can work in log space.
    [eval constant ~env] = 1.0 for any [env]. *)

val basis : t -> (string * int * int) list list
(** The monomials of the bound, in the canonical (printing) order. Each
    monomial is its sorted variable bindings [(var, poly_degree,
    log_degree)]; the constant monomial is []. E.g.
    [basis (add (linear "n") (log_ "m"))] =
    [[[("n", 1, 0)]; [("m", 0, 1)]]]. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [O(n^2 + n log m)]. Monomials appear in a deterministic
    canonical order (descending on their sorted variable bindings, the
    constant monomial last), so two [equal] bounds always print
    identically however they were constructed. *)

val to_string : t -> string
