(* The registry holds everything the concept engine knows about a world of
   types: concept definitions, per-type structural descriptions (associated
   types), a global table of (free) operations, and declared models.

   Structural information supports ML-signature-style checking; declared
   models support Haskell-type-class-style nominal conformance; the paper
   (Section 2.1) discusses both. Our checker verifies the structure behind
   every nominal declaration, so a declared model is a *checked claim*. *)

type type_desc = {
  td_name : string;
  td_assoc : (string * Ctype.t) list; (* associated type bindings *)
  td_doc : string;
}

type model = {
  mo_concept : string;
  mo_args : Ctype.t list; (* ground argument types *)
  mo_axioms_asserted : string list;
      (* axioms of the concept the declarer vouches for (or has proved) *)
  mo_complexity : (string * Complexity.t) list;
      (* declared bound per operation name *)
  mo_doc : string;
}

type t = {
  mutable concepts : (string * Concept.t) list;
  mutable types : (string * type_desc) list;
  mutable ops : Concept.signature list;
  mutable models : model list;
  mutable refinement_edges : (string * string) list;
      (* (refining, refined) pairs, derived from concept definitions *)
  mutable generation : int;
      (* bumped on every declaration; memo caches key on it so a mutated
         registry can never serve a stale closure *)
}

let create () =
  { concepts = []; types = []; ops = []; models = []; refinement_edges = [];
    generation = 0 }

let generation t = t.generation
let touch t = t.generation <- t.generation + 1

exception Duplicate of string

let declare_concept t (c : Concept.t) =
  if List.mem_assoc c.Concept.name t.concepts then
    raise (Duplicate ("concept " ^ c.Concept.name));
  t.concepts <- (c.Concept.name, c) :: t.concepts;
  t.refinement_edges <-
    List.map (fun (r, _) -> (c.Concept.name, r)) c.Concept.refines
    @ t.refinement_edges;
  touch t

let declare_type ?(doc = "") ?(assoc = []) t name =
  if List.mem_assoc name t.types then raise (Duplicate ("type " ^ name));
  t.types <- (name, { td_name = name; td_assoc = assoc; td_doc = doc }) :: t.types;
  touch t

let declare_op ?(doc = "") t op_name op_params op_return =
  t.ops <-
    { Concept.op_name; op_params; op_return; op_doc = doc } :: t.ops;
  touch t

let declare_model ?(doc = "") ?(axioms = []) ?(complexity = []) t concept args
    =
  t.models <-
    {
      mo_concept = concept;
      mo_args = args;
      mo_axioms_asserted = axioms;
      mo_complexity = complexity;
      mo_doc = doc;
    }
    :: t.models;
  touch t

(* ------------------------------------------------------------------ *)
(* Generation-keyed indexes                                            *)
(* ------------------------------------------------------------------ *)

(* Hot lookups (find_concept / find_type / find_model / find_ops /
   refines) go through hashtable indexes instead of scanning the
   association lists. The record type is exposed transparently in the
   .mli and callers such as Lang.load_items mutate its fields directly,
   so the index cannot live inside [t]; it lives in a small side cache
   keyed by physical identity and is rebuilt lazily whenever the
   registry's generation counter has moved past the one the index was
   built at. An evicted slot merely costs one rebuild on next use. *)

(* (name, argument types) keys, compared with Ctype.equal. Ctype
   equality is structural, so the polymorphic hash is consistent. *)
module Key2_tbl = Hashtbl.Make (struct
  type t = string * Ctype.t list

  let equal (c1, a1) (c2, a2) =
    String.equal c1 c2
    && List.length a1 = List.length a2
    && List.for_all2 Ctype.equal a1 a2

  let hash = Hashtbl.hash
end)

type index = {
  ix_generation : int;
  ix_concepts : (string, Concept.t) Hashtbl.t;
  ix_types : (string, type_desc) Hashtbl.t;
  ix_ops : Concept.signature list Key2_tbl.t;
      (* (name, params) -> matching ops, most recent first *)
  ix_models : model Key2_tbl.t; (* (concept, args) -> most recent model *)
  ix_reachable : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* transitive-refinement closure: names reachable via >= 1 edge *)
}

let build_index t =
  let ix_concepts = Hashtbl.create 64 in
  (* the assoc lists are most-recent-first; first occurrence wins *)
  List.iter
    (fun (name, c) ->
      if not (Hashtbl.mem ix_concepts name) then Hashtbl.add ix_concepts name c)
    t.concepts;
  let ix_types = Hashtbl.create 64 in
  List.iter
    (fun (name, td) ->
      if not (Hashtbl.mem ix_types name) then Hashtbl.add ix_types name td)
    t.types;
  let ix_ops = Key2_tbl.create 64 in
  (* iterate oldest-first and prepend, so buckets end most-recent-first
     like the list scan they replace *)
  List.iter
    (fun (s : Concept.signature) ->
      let key = (s.Concept.op_name, s.Concept.op_params) in
      let prev = Option.value ~default:[] (Key2_tbl.find_opt ix_ops key) in
      Key2_tbl.replace ix_ops key (s :: prev))
    (List.rev t.ops);
  let ix_models = Key2_tbl.create 64 in
  List.iter
    (fun m ->
      let key = (m.mo_concept, m.mo_args) in
      if not (Key2_tbl.mem ix_models key) then Key2_tbl.add ix_models key m)
    t.models;
  let ix_reachable = Hashtbl.create 64 in
  let adj = Hashtbl.create 64 in
  List.iter (fun (x, y) -> Hashtbl.add adj x y) t.refinement_edges;
  List.iter
    (fun (x, _) ->
      if not (Hashtbl.mem ix_reachable x) then begin
        let seen = Hashtbl.create 16 in
        let rec dfs c =
          List.iter
            (fun y ->
              if not (Hashtbl.mem seen y) then begin
                Hashtbl.add seen y ();
                dfs y
              end)
            (Hashtbl.find_all adj c)
        in
        dfs x;
        Hashtbl.add ix_reachable x seen
      end)
    t.refinement_edges;
  { ix_generation = t.generation; ix_concepts; ix_types; ix_ops; ix_models;
    ix_reachable }

let index_cache : (t * index) option array = Array.make 8 None
let index_clock = ref 0

(* A rebuild means the side cache missed: either the registry mutated
   since the cached index (generation bump) or this registry was evicted
   from the 8-slot cache. Counted so an operator can spot declare-heavy
   workloads thrashing the index. *)
let count_rebuild () =
  Gp_telemetry.Tel.count "gp_registry_index_rebuilds_total" 1

let index_of t =
  let slots = Array.length index_cache in
  let rec scan i =
    if i = slots then None
    else
      match index_cache.(i) with
      | Some (r, _) when r == t -> Some i
      | Some _ | None -> scan (i + 1)
  in
  match scan 0 with
  | Some i -> (
    match index_cache.(i) with
    | Some (_, ix) when ix.ix_generation = t.generation -> ix
    | Some _ | None ->
      count_rebuild ();
      let ix = build_index t in
      index_cache.(i) <- Some (t, ix);
      ix)
  | None ->
    count_rebuild ();
    let ix = build_index t in
    let slot = !index_clock mod slots in
    index_clock := !index_clock + 1;
    index_cache.(slot) <- Some (t, ix);
    ix

let find_concept t name = Hashtbl.find_opt (index_of t).ix_concepts name
let find_type t name = Hashtbl.find_opt (index_of t).ix_types name
let find_model t concept args = Key2_tbl.find_opt (index_of t).ix_models (concept, args)

let concepts t = List.map snd t.concepts
let models t = t.models

(* Resolve a type expression to ground normal form: associated-type
   projections are looked up in the type descriptions. *)
let rec resolve t ty =
  match ty with
  | Ctype.Named _ | Ctype.Var _ -> Some ty
  | Ctype.App (f, args) ->
    let rec go acc = function
      | [] -> Some (Ctype.App (f, List.rev acc))
      | a :: rest -> (
        match resolve t a with
        | Some a' -> go (a' :: acc) rest
        | None -> None)
    in
    go [] args
  | Ctype.Assoc (base, field) -> (
    match resolve t base with
    | Some (Ctype.Named n) -> (
      match find_type t n with
      | Some td -> (
        match List.assoc_opt field td.td_assoc with
        | Some bound -> resolve t bound
        | None -> None)
      | None -> None)
    | Some _ | None -> None)

(* Look up ground operations matching name + parameter types. Several ops
   may share name and parameters but differ in return type (e.g. the nullary
   "id" of every monoid carrier), so callers needing the return type filter
   over all matches. *)
let find_ops t name params =
  Option.value ~default:[]
    (Key2_tbl.find_opt (index_of t).ix_ops (name, params))

let find_op t name params =
  match find_ops t name params with [] -> None | s :: _ -> Some s

(* Transitive refinement: does concept [a] (directly or indirectly) refine
   concept [b]? Reflexive. Answered from the precomputed closure. *)
let refines t a b =
  String.equal a b
  ||
  match Hashtbl.find_opt (index_of t).ix_reachable a with
  | None -> false
  | Some reachable -> Hashtbl.mem reachable b

(* Refinement depth of a concept: length of the longest refinement chain
   below it. Used for most-refined-wins overload resolution. *)
let refinement_depth t name =
  let rec depth visited c =
    if List.mem c visited then 0
    else
      match find_concept t c with
      | None -> 0
      | Some con ->
        let below =
          List.map (fun (r, _) -> depth (c :: visited) r) con.Concept.refines
        in
        1 + List.fold_left max 0 below
  in
  depth [] name
