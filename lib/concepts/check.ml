(* Concept checking with call-site-quality diagnostics.

   The paper's Section 2.1 complaint about C++: "passing a non-conforming
   data type usually results in lengthy error messages referring to the
   implementation of the generic function instead of the actual point of
   error". This checker produces structured failures that say exactly which
   requirement of which concept a type fails, so callers (examples, the
   overload resolver, the lint tool) can present the error at the right
   level of abstraction. *)

type failure =
  | Unknown_concept of string
  | Unknown_type of Ctype.t
  | Arity_mismatch of { concept : string; expected : int; got : int }
  | Unresolved_type of { ty : Ctype.t; context : string }
  | Missing_assoc_type of { ty : Ctype.t; assoc : string }
  | Missing_operation of { expected : Concept.signature }
  | Return_type_mismatch of {
      op : string;
      expected : Ctype.t;
      found : Ctype.t;
    }
  | Same_type_violated of { left : Ctype.t; right : Ctype.t }
  | Refinement_failed of {
      concept : string;
      args : Ctype.t list;
      causes : failure list;
    }
  | Nested_model_failed of {
      concept : string;
      args : Ctype.t list;
      causes : failure list;
    }
  | Complexity_too_weak of {
      op : string;
      required : Complexity.t;
      declared : Complexity.t;
    }
  | No_model_declared of { concept : string; args : Ctype.t list }

type warning =
  | Axiom_asserted_not_proved of { concept : string; axiom : string }
  | Axiom_not_asserted of { concept : string; axiom : string }
  | No_complexity_declared of { concept : string; op : string }

type report = {
  rep_concept : string;
  rep_args : Ctype.t list;
  rep_failures : failure list;
  rep_warnings : warning list;
}

let ok report = report.rep_failures = []

type mode =
  | Structural (* ML-signature style: structure alone decides *)
  | Nominal (* Haskell-type-class style: a model declaration is required *)

let rec pp_failure ppf = function
  | Unknown_concept c -> Fmt.pf ppf "unknown concept %s" c
  | Unknown_type ty -> Fmt.pf ppf "unknown type %a" Ctype.pp ty
  | Arity_mismatch { concept; expected; got } ->
    Fmt.pf ppf "concept %s expects %d type argument(s), got %d" concept
      expected got
  | Unresolved_type { ty; context } ->
    Fmt.pf ppf "cannot resolve type %a (%s)" Ctype.pp ty context
  | Missing_assoc_type { ty; assoc } ->
    Fmt.pf ppf "type %a does not provide associated type %s" Ctype.pp ty assoc
  | Missing_operation { expected } ->
    Fmt.pf ppf "no operation %a" Concept.pp_signature expected
  | Return_type_mismatch { op; expected; found } ->
    Fmt.pf ppf "operation %s returns %a where %a is required" op Ctype.pp
      found Ctype.pp expected
  | Same_type_violated { left; right } ->
    Fmt.pf ppf "types %a and %a must be equal" Ctype.pp left Ctype.pp right
  | Refinement_failed { concept; args; causes } ->
    Fmt.pf ppf "@[<v2>refined concept %s<%a> not modeled:@,%a@]" concept
      Fmt.(list ~sep:comma Ctype.pp)
      args
      Fmt.(list ~sep:cut pp_failure)
      causes
  | Nested_model_failed { concept; args; causes } ->
    Fmt.pf ppf "@[<v2>required model %s<%a> fails:@,%a@]" concept
      Fmt.(list ~sep:comma Ctype.pp)
      args
      Fmt.(list ~sep:cut pp_failure)
      causes
  | Complexity_too_weak { op; required; declared } ->
    Fmt.pf ppf "operation %s declared %a, concept requires %a" op
      Complexity.pp declared Complexity.pp required
  | No_model_declared { concept; args } ->
    Fmt.pf ppf "no model of %s declared for <%a> (nominal mode)" concept
      Fmt.(list ~sep:comma Ctype.pp)
      args

let pp_warning ppf = function
  | Axiom_asserted_not_proved { concept; axiom } ->
    Fmt.pf ppf "axiom %s.%s is asserted but not backed by a checked proof"
      concept axiom
  | Axiom_not_asserted { concept; axiom } ->
    Fmt.pf ppf "axiom %s.%s is neither asserted nor proved" concept axiom
  | No_complexity_declared { concept; op } ->
    Fmt.pf ppf "model declares no complexity bound for %s.%s" concept op

let pp_report ppf r =
  if r.rep_failures = [] then
    Fmt.pf ppf "@[<v2><%a> models %s%a@]"
      Fmt.(list ~sep:comma Ctype.pp)
      r.rep_args r.rep_concept
      Fmt.(
        list ~sep:nop (fun ppf w -> pf ppf "@,warning: %a" pp_warning w))
      r.rep_warnings
  else
    Fmt.pf ppf "@[<v2><%a> does NOT model %s:@,%a@]"
      Fmt.(list ~sep:comma Ctype.pp)
      r.rep_args r.rep_concept
      Fmt.(list ~sep:cut pp_failure)
      r.rep_failures

(* The axiom-proof certification table: (concept, axiom, type-args) triples
   that have been discharged by a checked proof. gp_simplicissimus's Certify
   and the athena examples insert into this through [certify_axiom]. *)
let certified : (string * string * string) list ref = ref []

let axiom_key concept axiom args =
  ( concept,
    axiom,
    String.concat "," (List.map Ctype.to_string args) )

let certify_axiom ~concept ~axiom ~args =
  let key = axiom_key concept axiom args in
  if not (List.mem key !certified) then certified := key :: !certified

let axiom_certified ~concept ~axiom ~args =
  List.mem (axiom_key concept axiom args) !certified

let rec check_concept ?(mode = Structural) ~visited reg concept_name args =
  let fail f = ([ f ], []) in
  match Registry.find_concept reg concept_name with
  | None -> fail (Unknown_concept concept_name)
  | Some con ->
    let params = con.Concept.params in
    if List.length params <> List.length args then
      fail
        (Arity_mismatch
           {
             concept = concept_name;
             expected = List.length params;
             got = List.length args;
           })
    else
      let key = (concept_name, List.map Ctype.to_string args) in
      if List.mem key visited then ([], []) (* assume on cycles *)
      else
        let visited = key :: visited in
        let env = List.combine params args in
        let model = Registry.find_model reg concept_name args in
        let nominal_failures =
          match mode, model with
          | Nominal, None ->
            [ No_model_declared { concept = concept_name; args } ]
          | (Nominal | Structural), _ -> []
        in
        let resolve_or ty context k =
          let ty = Ctype.subst env ty in
          match Registry.resolve reg ty with
          | Some g -> k g
          | None -> [ Unresolved_type { ty; context } ]
        in
        (* refined concepts *)
        let refine_results =
          List.map
            (fun (rname, rargs) ->
              let rargs = List.map (Ctype.subst env) rargs in
              let rargs_resolved =
                List.map
                  (fun a ->
                    match Registry.resolve reg a with Some g -> g | None -> a)
                  rargs
              in
              let fs, ws =
                check_concept ~mode ~visited reg rname rargs_resolved
              in
              if fs = [] then ([], ws)
              else
                ( [
                    Refinement_failed
                      { concept = rname; args = rargs_resolved; causes = fs };
                  ],
                  ws ))
            con.Concept.refines
        in
        let req_results =
          List.map
            (fun req ->
              match req with
              | Concept.Assoc_type { at_name; at_constraints } ->
                (* associated types belong to the first parameter *)
                let owner = List.hd args in
                let proj = Ctype.Assoc (owner, at_name) in
                (match Registry.resolve reg proj with
                | None ->
                  ([ Missing_assoc_type { ty = owner; assoc = at_name } ], [])
                | Some _ ->
                  let sub =
                    check_constraints ~mode ~visited reg env at_constraints
                  in
                  sub)
              | Concept.Operation s ->
                let check_op () =
                  let param_tys =
                    List.map (Ctype.subst env) s.Concept.op_params
                  in
                  let resolved =
                    List.map (Registry.resolve reg) param_tys
                  in
                  if List.exists Option.is_none resolved then
                    ( [
                        Unresolved_type
                          {
                            ty = List.hd param_tys;
                            context = "parameter of " ^ s.Concept.op_name;
                          };
                      ],
                      [] )
                  else
                    let param_tys = List.map Option.get resolved in
                    match
                      Registry.find_ops reg s.Concept.op_name param_tys
                    with
                    | [] ->
                      ( [
                          Missing_operation
                            {
                              expected =
                                {
                                  s with
                                  Concept.op_params = param_tys;
                                  op_return =
                                    Ctype.subst env s.Concept.op_return;
                                };
                            };
                        ],
                        [] )
                    | candidates ->
                      resolve_or s.Concept.op_return
                        ("return of " ^ s.Concept.op_name) (fun expected ->
                          let returns =
                            List.filter_map
                              (fun (c : Concept.signature) ->
                                Registry.resolve reg c.Concept.op_return)
                              candidates
                          in
                          if List.exists (Ctype.equal expected) returns then
                            []
                          else
                            match returns with
                            | found :: _ ->
                              [
                                Return_type_mismatch
                                  { op = s.Concept.op_name; expected; found };
                              ]
                            | [] ->
                              [
                                Unresolved_type
                                  {
                                    ty = s.Concept.op_return;
                                    context =
                                      "return of found op "
                                      ^ s.Concept.op_name;
                                  };
                              ])
                      |> fun fs -> (fs, [])
                in
                check_op ()
              | Concept.Constraint c ->
                check_constraints ~mode ~visited reg env [ c ]
              | Concept.Axiom a ->
                let warn =
                  if
                    axiom_certified ~concept:concept_name ~axiom:a.ax_name
                      ~args
                  then []
                  else
                    match model with
                    | Some m
                      when List.mem a.Concept.ax_name m.Registry.mo_axioms_asserted
                      ->
                      [
                        Axiom_asserted_not_proved
                          { concept = concept_name; axiom = a.Concept.ax_name };
                      ]
                    | _ ->
                      [
                        Axiom_not_asserted
                          { concept = concept_name; axiom = a.Concept.ax_name };
                      ]
                in
                ([], warn)
              | Concept.Complexity_guarantee cg -> (
                match model with
                | None ->
                  ( [],
                    [
                      No_complexity_declared
                        { concept = concept_name; op = cg.Concept.cg_op };
                    ] )
                | Some m -> (
                  match
                    List.assoc_opt cg.Concept.cg_op m.Registry.mo_complexity
                  with
                  | None ->
                    ( [],
                      [
                        No_complexity_declared
                          { concept = concept_name; op = cg.Concept.cg_op };
                      ] )
                  | Some declared ->
                    if Complexity.leq declared cg.Concept.cg_bound then
                      ([], [])
                    else
                      ( [
                          Complexity_too_weak
                            {
                              op = cg.Concept.cg_op;
                              required = cg.Concept.cg_bound;
                              declared;
                            };
                        ],
                        [] ))))
            con.Concept.requirements
        in
        let all = refine_results @ req_results in
        ( nominal_failures @ List.concat_map fst all,
          List.concat_map snd all )

and check_constraints ~mode ~visited reg env cs =
  let results =
    List.map
      (fun c ->
        match c with
        | Concept.Models (cname, cargs) ->
          let cargs = List.map (Ctype.subst env) cargs in
          let resolved =
            List.map
              (fun a ->
                match Registry.resolve reg a with Some g -> g | None -> a)
              cargs
          in
          let fs, ws = check_concept ~mode ~visited reg cname resolved in
          if fs = [] then ([], ws)
          else
            ( [
                Nested_model_failed
                  { concept = cname; args = resolved; causes = fs };
              ],
              ws )
        | Concept.Same_type (a, b) ->
          let ra = Registry.resolve reg (Ctype.subst env a)
          and rb = Registry.resolve reg (Ctype.subst env b) in
          (match ra, rb with
          | Some x, Some y when Ctype.equal x y -> ([], [])
          | Some x, Some y ->
            ([ Same_type_violated { left = x; right = y } ], [])
          | None, _ ->
            ( [ Unresolved_type { ty = a; context = "same-type constraint" } ],
              [] )
          | _, None ->
            ( [ Unresolved_type { ty = b; context = "same-type constraint" } ],
              [] )))
      cs
  in
  (List.concat_map fst results, List.concat_map snd results)

(* Public entry point: check whether ground types [args] model [concept]. *)
let check ?(mode = Structural) reg concept args =
  Gp_telemetry.Tel.with_span ~name:"concepts.check"
    ~attrs:(fun () ->
      [
        ( "mode",
          match mode with Structural -> "structural" | Nominal -> "nominal" );
        ("concept", concept);
      ])
    (fun () ->
      let failures, warnings =
        check_concept ~mode ~visited:[] reg concept args
      in
      let module Tel = Gp_telemetry.Tel in
      if Tel.is_enabled () then begin
        let outcome = if failures = [] then "ok" else "failed" in
        Tel.count ~labels:[ ("outcome", outcome) ] "gp_checks_total" 1;
        Tel.count "gp_check_failures_total" (List.length failures);
        Tel.count "gp_check_warnings_total" (List.length warnings);
        Tel.attr "outcome" outcome
      end;
      {
        rep_concept = concept;
        rep_args = args;
        rep_failures = failures;
        rep_warnings = warnings;
      })

let models ?mode reg concept args = ok (check ?mode reg concept args)
