(** Constraint propagation (paper Section 2.3).

    Declaring "G models IncidenceGraph" implies every constraint of the
    refined concepts and of the associated types; languages without
    propagation force programmers to restate the full closure at every
    generic function. [closure] computes the implied set; the size
    functions quantify the savings (experiment C3) and the
    associated-type-emulation cost (Section 2.2). *)

type obligation = { ob_concept : string; ob_args : Ctype.t list }

val obligation_equal : obligation -> obligation -> bool

val closure_with :
  ?max_depth:int ->
  lookup:(string -> Concept.t option) ->
  string ->
  Ctype.t list ->
  obligation list
(** The pure core: all obligations implied by [concept<args>], including
    itself, deduplicated, as a function of a concept-lookup function
    alone. Same lookup, same answer — which is what makes closures
    memoisable (gp_service keys its closure cache on
    {!Registry.generation} plus the query). [max_depth] bounds recursion
    through associated types (container/iterator cycles are legal). *)

val closure_with_reference :
  ?max_depth:int ->
  lookup:(string -> Concept.t option) ->
  string ->
  Ctype.t list ->
  obligation list
(** The seed implementation of {!closure_with} (linear-scan dedup,
    quadratic in the closure size), retained as the oracle the qcheck
    equivalence suite and the s2 bench compare the hashed worklist
    against. Same obligations, same order, different complexity. *)

val closure :
  ?max_depth:int -> Registry.t -> string -> Ctype.t list -> obligation list
(** [closure_with] over [Registry.find_concept reg]. *)

val closure_reference :
  ?max_depth:int -> Registry.t -> string -> Ctype.t list -> obligation list
(** [closure_with_reference] over [Registry.find_concept reg]. *)

val request_key :
  ?max_depth:int -> Registry.t -> string -> Ctype.t list -> string
(** Canonical content key for memoising a closure query: encodes the
    registry generation, the depth bound, and the query. *)

val declared_size : int
(** Constraints written {e with} propagation: always 1 (the root). *)

val explicit_size : ?max_depth:int -> Registry.t -> string -> Ctype.t list -> int
(** Constraints a language without propagation makes the programmer
    write: the closure size. *)

val emulation_type_parameters :
  ?max_depth:int -> Registry.t -> string -> Ctype.t list -> int
(** Extra type parameters needed by the "one parameter per associated
    type" emulation (Section 2.2) for one use of the concept. *)

val pp_obligation : Format.formatter -> obligation -> unit
