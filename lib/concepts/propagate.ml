(* Constraint propagation (paper Section 2.3).

   Declaring "G models IncidenceGraph" should implicitly make available every
   constraint that follows: the refined concepts of IncidenceGraph, and the
   constraints IncidenceGraph places on its associated types (edge_type
   models GraphEdge, out_edge_iterator models Iterator, ...). Languages
   without propagation force the programmer to restate the whole closure at
   every generic function (the paper's first_neighbor example, and the 2^n
   blowup of Section 2.4).

   [closure] computes the full implied constraint set; [explicit_size]
   counts how many constraints a language *without* propagation would
   require the programmer to write, which is what experiment C3
   regenerates. *)

module Tel = Gp_telemetry.Tel

type obligation = {
  ob_concept : string;
  ob_args : Ctype.t list; (* in terms of the root's parameters / assoc paths *)
}

let obligation_equal a b =
  String.equal a.ob_concept b.ob_concept
  && List.length a.ob_args = List.length b.ob_args
  && List.for_all2 Ctype.equal a.ob_args b.ob_args

(* All obligations implied by [concept<args>], including itself. [depth]
   bounds recursion through associated types (cyclic concept references such
   as container<->iterator are legal).

   The core is a pure function of a concept-lookup function, not of a
   mutable registry: the same lookup always yields the same closure, which
   is what lets gp_service memoise closures by content key alone.

   Implemented as an explicit worklist with a hashed seen-set (the seed's
   [List.exists obligation_equal] dedup was quadratic in the closure
   size; see [closure_with_reference] below for that oracle). Children
   are pushed as a block ahead of the remaining work, so the emission
   order is exactly the reference's depth-first pre-order. *)
module Ob_tbl = Hashtbl.Make (struct
  type t = string * Ctype.t list

  let equal (c1, a1) (c2, a2) =
    String.equal c1 c2
    && List.length a1 = List.length a2
    && List.for_all2 Ctype.equal a1 a2

  (* Ctype equality is structural, so the polymorphic hash agrees *)
  let hash = Hashtbl.hash
end)

let closure_with ?(max_depth = 8) ~lookup concept args =
  Tel.with_span ~name:"concepts.closure"
    ~attrs:(fun () -> [ ("concept", concept) ])
    (fun () ->
      let seen = Ob_tbl.create 64 in
      let acc = ref [] in
      (* items ever enqueued on the worklist, duplicates included — one
         int store per push; flushed to telemetry only when enabled *)
      let pushed = ref 1 in
      let rec drain = function
        | [] -> ()
        | (depth, concept, args) :: rest ->
          if depth > max_depth || Ob_tbl.mem seen (concept, args) then
            drain rest
          else begin
            Ob_tbl.add seen (concept, args) ();
            acc := { ob_concept = concept; ob_args = args } :: !acc;
            match lookup concept with
            | None -> drain rest
            | Some con ->
              let env = List.combine con.Concept.params args in
              let refined =
                List.map
                  (fun (rname, rargs) ->
                    (depth + 1, rname, List.map (Ctype.subst env) rargs))
                  con.Concept.refines
              in
              let required =
                List.concat_map
                  (fun req ->
                    let constraints =
                      match req with
                      | Concept.Assoc_type { at_constraints; _ } ->
                        at_constraints
                      | Concept.Constraint c -> [ c ]
                      | Concept.Operation _ | Concept.Axiom _
                      | Concept.Complexity_guarantee _ ->
                        []
                    in
                    List.filter_map
                      (function
                        | Concept.Models (cname, cargs) ->
                          Some
                            (depth + 1, cname, List.map (Ctype.subst env) cargs)
                        | Concept.Same_type _ -> None)
                      constraints)
                  con.Concept.requirements
              in
              pushed := !pushed + List.length refined + List.length required;
              drain (refined @ required @ rest)
          end
      in
      drain [ (0, concept, args) ];
      let obs = List.rev !acc in
      if Tel.is_enabled () then begin
        let size = List.length obs in
        Tel.count "gp_closure_calls_total" 1;
        Tel.count "gp_closure_worklist_pushes_total" !pushed;
        Tel.observe "gp_closure_size" (float_of_int size);
        Tel.attr "size" (string_of_int size);
        Tel.attr "worklist_pushes" (string_of_int !pushed)
      end;
      obs)

(* The seed implementation, retained verbatim as the oracle the qcheck
   equivalence suite and the s2 bench compare against: dedup by linear
   scan of the accumulator, recursive descent. *)
let closure_with_reference ?(max_depth = 8) ~lookup concept args =
  let acc = ref [] in
  let add ob =
    if not (List.exists (obligation_equal ob) !acc) then (
      acc := ob :: !acc;
      true)
    else false
  in
  let rec go depth concept args =
    if depth > max_depth then ()
    else
      let ob = { ob_concept = concept; ob_args = args } in
      if add ob then
        match lookup concept with
        | None -> ()
        | Some con ->
          let env = List.combine con.Concept.params args in
          List.iter
            (fun (rname, rargs) ->
              go (depth + 1) rname (List.map (Ctype.subst env) rargs))
            con.Concept.refines;
          List.iter
            (fun req ->
              let constraints =
                match req with
                | Concept.Assoc_type { at_constraints; _ } -> at_constraints
                | Concept.Constraint c -> [ c ]
                | Concept.Operation _ | Concept.Axiom _
                | Concept.Complexity_guarantee _ ->
                  []
              in
              List.iter
                (function
                  | Concept.Models (cname, cargs) ->
                    go (depth + 1) cname (List.map (Ctype.subst env) cargs)
                  | Concept.Same_type _ -> ())
                constraints)
            con.Concept.requirements
  in
  go 0 concept args;
  List.rev !acc

let closure ?max_depth reg concept args =
  closure_with ?max_depth ~lookup:(Registry.find_concept reg) concept args

let closure_reference ?max_depth reg concept args =
  closure_with_reference ?max_depth
    ~lookup:(Registry.find_concept reg)
    concept args

(* Canonical cache key for a closure query. The registry's generation
   counter stands in for the lookup function: any declaration bumps it, so
   a stale closure can never be served after the world changes. *)
let request_key ?(max_depth = 8) reg concept args =
  Printf.sprintf "closure|g%d|d%d|%s<%s>" (Registry.generation reg) max_depth
    concept
    (String.concat "," (List.map Ctype.to_string args))

(* Number of constraints the programmer writes with propagation: just the
   root constraint. *)
let declared_size = 1

(* Number of constraints the programmer must write without propagation: the
   whole closure (each "X models C" clause spelled out). *)
let explicit_size ?max_depth reg concept args =
  List.length (closure ?max_depth reg concept args)

(* Associated-type parameter count: how many extra type parameters the
   "one parameter per associated type" emulation (Section 2.2) needs for a
   single use of [concept]. Counts associated types across the closure. *)
let emulation_type_parameters ?max_depth reg concept args =
  let obs = closure ?max_depth reg concept args in
  List.fold_left
    (fun n ob ->
      match Registry.find_concept reg ob.ob_concept with
      | None -> n
      | Some con -> n + List.length (Concept.associated_types con))
    0 obs

let pp_obligation ppf ob =
  Fmt.pf ppf "%a : %s" Fmt.(list ~sep:comma Ctype.pp) ob.ob_args ob.ob_concept
