(* A cohesive surface syntax for concepts — the paper's stated future
   work ("unifying the notions of syntactic, semantic, and performance
   requirements on concepts into a single, cohesive syntax").

   The grammar (informally):

     file        ::= item*
     item        ::= concept | typedecl | opdecl | modeldecl
     concept     ::= "concept" name "<" params ">" [refines] "{" req* "}"
     refines     ::= "refines" usage ("," usage)*
     usage       ::= name "<" ty ("," ty)* ">"
     req         ::= "type" name [where] ";"                 associated type
                   | name ":" [ty ("," ty)*] "->" ty ";"     operation
                   | "axiom" name ["(" ids ")"] ":" string ";"
                   | "complexity" name bigO ["amortized"] ";"
                   | "requires" usage ";"                    nested Models
                   | "same" ty "==" ty ";"
     where       ::= "where" wclause ("," wclause)*
     wclause     ::= "models" usage | "==" ty
     bigO        ::= "O(" oterm ("+" oterm)* ")"
     oterm       ::= ofactor+         (product by juxtaposition)
     ofactor     ::= "1" | id ["^" int] | "log" id
     typedecl    ::= "type" tyname ["{" (name "=" ty ";")* "}"] ";"?
     opdecl      ::= "op" name ":" [ty ("," ty)*] "->" ty ";"
     modeldecl   ::= "model" usage ["asserting" ids] ";"
     ty          ::= atom ("." name)*          projections
     atom        ::= id | string | id "<" ty ("," ty)* ">"

   Type names containing special characters (["int[+]"],
   ["vector<int>::iterator"]) are written as double-quoted strings.
   Inside a concept body, identifiers matching a declared parameter are
   parsed as parameters; everything else is a named type. Comments:
   [// ...] to end of line. *)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tstring of string
  | Tint of int
  | Tpunct of string (* < > { } ( ) , ; : == -> . ^ *)
  | Teof

type lexer_state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

exception Parse_error of { line : int; col : int; message : string }

let error st fmt =
  Fmt.kstr
    (fun message ->
      raise (Parse_error { line = st.line; col = st.col; message }))
    fmt

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/'
    ->
    let rec to_eol () =
      match peek_char st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | _ -> ()

let next_token st =
  skip_ws st;
  match peek_char st with
  | None -> Teof
  | Some '"' ->
    advance st;
    let buf = Buffer.create 16 in
    let rec go () =
      match peek_char st with
      | Some '"' -> advance st
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | None -> error st "unterminated string literal"
    in
    go ();
    Tstring (Buffer.contents buf)
  | Some c when (c >= '0' && c <= '9') ->
    let buf = Buffer.create 4 in
    let rec go () =
      match peek_char st with
      | Some c when c >= '0' && c <= '9' ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    Tint (int_of_string (Buffer.contents buf))
  | Some c when is_id_char c ->
    let buf = Buffer.create 8 in
    let rec go () =
      match peek_char st with
      | Some c when is_id_char c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    Tid (Buffer.contents buf)
  | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '>'
    ->
    advance st;
    advance st;
    Tpunct "->"
  | Some '=' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '='
    ->
    advance st;
    advance st;
    Tpunct "=="
  | Some '=' ->
    advance st;
    Tpunct "="
  | Some (( '<' | '>' | '{' | '}' | '(' | ')' | ',' | ';' | ':' | '.' | '^'
          | '+' ) as c) ->
    advance st;
    Tpunct (String.make 1 c)
  | Some c -> error st "unexpected character %c" c

(* A one-token-lookahead stream. *)
type stream = { lex : lexer_state; mutable tok : token }

let make_stream src =
  let lex = { src; pos = 0; line = 1; col = 1 } in
  { lex; tok = next_token lex }

let shift s = s.tok <- next_token s.lex

let expect_punct s p =
  match s.tok with
  | Tpunct q when q = p -> shift s
  | _ -> error s.lex "expected '%s'" p

let expect_id s =
  match s.tok with
  | Tid x ->
    shift s;
    x
  | _ -> error s.lex "expected an identifier"

let accept_punct s p =
  match s.tok with
  | Tpunct q when q = p ->
    shift s;
    true
  | _ -> false

let accept_id s word =
  match s.tok with
  | Tid x when x = word ->
    shift s;
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Type expressions                                                    *)
(* ------------------------------------------------------------------ *)

(* [params]: identifiers to parse as concept parameters. *)
let rec parse_ty s ~params =
  let atom =
    match s.tok with
    | Tstring name ->
      shift s;
      Ctype.Named name
    | Tid name ->
      shift s;
      if accept_punct s "<" then begin
        let args = parse_ty_list s ~params in
        expect_punct s ">";
        Ctype.App (name, args)
      end
      else if List.mem name params then Ctype.Var name
      else Ctype.Named name
    | _ -> error s.lex "expected a type"
  in
  let rec projections base =
    if accept_punct s "." then begin
      let field = expect_id s in
      projections (Ctype.Assoc (base, field))
    end
    else base
  in
  projections atom

and parse_ty_list s ~params =
  let first = parse_ty s ~params in
  if accept_punct s "," then first :: parse_ty_list s ~params
  else [ first ]

let parse_usage s ~params =
  let name =
    match s.tok with
    | Tid x ->
      shift s;
      x
    | _ -> error s.lex "expected a concept name"
  in
  expect_punct s "<";
  let args = parse_ty_list s ~params in
  expect_punct s ">";
  (name, args)

(* ------------------------------------------------------------------ *)
(* Complexity expressions                                              *)
(* ------------------------------------------------------------------ *)

let parse_bigO s =
  (match s.tok with
  | Tid "O" -> shift s
  | _ -> error s.lex "expected O(...)");
  expect_punct s "(";
  let parse_factor () =
    match s.tok with
    | Tint 1 ->
      shift s;
      Complexity.constant
    | Tid "log" ->
      shift s;
      let v = expect_id s in
      Complexity.log_ v
    | Tid v ->
      shift s;
      if accept_punct s "^" then begin
        match s.tok with
        | Tint k ->
          shift s;
          Complexity.power v k
        | _ -> error s.lex "expected an exponent"
      end
      else Complexity.linear v
    | _ -> error s.lex "expected a complexity factor"
  in
  let rec parse_term acc =
    match s.tok with
    | Tint 1 | Tid _ -> parse_term (Complexity.mul acc (parse_factor ()))
    | _ -> acc
  in
  let rec parse_sum acc =
    if accept_punct s "+" then
      parse_sum (Complexity.add acc (parse_term (parse_factor ())))
    else acc
  in
  ignore parse_sum;
  let first = parse_term (parse_factor ()) in
  let rec sums acc =
    match s.tok with
    | Tpunct "+" ->
      shift s;
      sums (Complexity.add acc (parse_term (parse_factor ())))
    | _ -> acc
  in
  let result = sums first in
  expect_punct s ")";
  result

(* ------------------------------------------------------------------ *)
(* Concepts                                                            *)
(* ------------------------------------------------------------------ *)

let parse_where_clauses s ~params ~self =
  (* where models Foo<...>, == ty, ... applied to associated type [self] *)
  let rec go acc =
    let clause =
      if accept_id s "models" then
        let name, args = parse_usage s ~params in
        Concept.Models (name, args)
      else if accept_punct s "==" then
        let ty = parse_ty s ~params in
        Concept.Same_type (self, ty)
      else error s.lex "expected 'models' or '=='"
    in
    let acc = clause :: acc in
    if accept_punct s "," then go acc else List.rev acc
  in
  go []

let parse_requirement s ~params ~owner =
  if accept_id s "type" then begin
    let name = expect_id s in
    let self = Ctype.Assoc (Ctype.Var owner, name) in
    let constraints =
      if accept_id s "where" then parse_where_clauses s ~params ~self else []
    in
    expect_punct s ";";
    Concept.assoc_type ~constraints name
  end
  else if accept_id s "axiom" then begin
    let name = expect_id s in
    let vars =
      if accept_punct s "(" then begin
        let rec ids acc =
          let x = expect_id s in
          if accept_punct s "," then ids (x :: acc) else List.rev (x :: acc)
        in
        let vs = ids [] in
        expect_punct s ")";
        vs
      end
      else []
    in
    expect_punct s ":";
    let statement =
      match s.tok with
      | Tstring str ->
        shift s;
        str
      | _ -> error s.lex "expected a quoted axiom statement"
    in
    expect_punct s ";";
    Concept.axiom ~vars name statement
  end
  else if accept_id s "complexity" then begin
    let op = expect_id s in
    let bound = parse_bigO s in
    let amortized = accept_id s "amortized" in
    expect_punct s ";";
    Concept.complexity ~amortized op bound
  end
  else if accept_id s "requires" then begin
    let name, args = parse_usage s ~params in
    expect_punct s ";";
    Concept.Constraint (Concept.Models (name, args))
  end
  else if accept_id s "same" then begin
    let a = parse_ty s ~params in
    expect_punct s "==";
    let b = parse_ty s ~params in
    expect_punct s ";";
    Concept.Constraint (Concept.Same_type (a, b))
  end
  else begin
    (* operation: name : ty, ty -> ty ; *)
    let name = expect_id s in
    expect_punct s ":";
    let params_tys =
      match s.tok with
      | Tpunct "->" -> []
      | _ ->
        let rec tys acc =
          let ty = parse_ty s ~params in
          if accept_punct s "," then tys (ty :: acc)
          else List.rev (ty :: acc)
        in
        tys []
    in
    expect_punct s "->";
    let ret = parse_ty s ~params in
    expect_punct s ";";
    Concept.signature name params_tys ret
  end

let parse_concept s =
  let name = expect_id s in
  expect_punct s "<";
  let rec param_ids acc =
    let x = expect_id s in
    if accept_punct s "," then param_ids (x :: acc) else List.rev (x :: acc)
  in
  let params = param_ids [] in
  expect_punct s ">";
  let refines =
    if accept_id s "refines" then begin
      let rec usages acc =
        let u = parse_usage s ~params in
        if accept_punct s "," then usages (u :: acc) else List.rev (u :: acc)
      in
      usages []
    end
    else []
  in
  expect_punct s "{";
  let owner = List.hd params in
  let rec reqs acc =
    match s.tok with
    | Tpunct "}" ->
      shift s;
      List.rev acc
    | _ -> reqs (parse_requirement s ~params ~owner :: acc)
  in
  let requirements = reqs [] in
  Concept.make ~params ~refines name requirements

(* ------------------------------------------------------------------ *)
(* Top-level items                                                     *)
(* ------------------------------------------------------------------ *)

type item =
  | Iconcept of Concept.t
  | Itype of { name : string; assoc : (string * Ctype.t) list }
  | Iop of { name : string; params : Ctype.t list; ret : Ctype.t }
  | Imodel of { concept : string; args : Ctype.t list; axioms : string list }

let parse_item s =
  if accept_id s "concept" then Some (Iconcept (parse_concept s))
  else if accept_id s "type" then begin
    let name =
      match s.tok with
      | Tid x ->
        shift s;
        x
      | Tstring x ->
        shift s;
        x
      | _ -> error s.lex "expected a type name"
    in
    let assoc =
      if accept_punct s "{" then begin
        let rec fields acc =
          match s.tok with
          | Tpunct "}" ->
            shift s;
            List.rev acc
          | _ ->
            let f = expect_id s in
            expect_punct s "=";
            let ty = parse_ty s ~params:[] in
            expect_punct s ";";
            fields ((f, ty) :: acc)
        in
        fields []
      end
      else []
    in
    ignore (accept_punct s ";");
    Some (Itype { name; assoc })
  end
  else if accept_id s "op" then begin
    let name = expect_id s in
    expect_punct s ":";
    let params =
      match s.tok with
      | Tpunct "->" -> []
      | _ ->
        let rec tys acc =
          let ty = parse_ty s ~params:[] in
          if accept_punct s "," then tys (ty :: acc)
          else List.rev (ty :: acc)
        in
        tys []
    in
    expect_punct s "->";
    let ret = parse_ty s ~params:[] in
    expect_punct s ";";
    Some (Iop { name; params; ret })
  end
  else if accept_id s "model" then begin
    let concept, args = parse_usage s ~params:[] in
    let axioms =
      if accept_id s "asserting" then begin
        let rec ids acc =
          let x = expect_id s in
          if accept_punct s "," then ids (x :: acc) else List.rev (x :: acc)
        in
        ids []
      end
      else []
    in
    expect_punct s ";";
    Some (Imodel { concept; args; axioms })
  end
  else
    match s.tok with
    | Teof -> None
    | _ -> error s.lex "expected 'concept', 'type', 'op' or 'model'"

let parse_string src =
  let s = make_stream src in
  let rec go acc =
    match parse_item s with
    | Some item -> go (item :: acc)
    | None -> List.rev acc
  in
  go []

(* Load a parsed file into a registry. Re-declaring an existing type is
   tolerated (its associated-type bindings are extended); re-declaring a
   concept raises [Registry.Duplicate]. *)
let load_items reg items =
  List.iter
    (function
      | Iconcept c -> Registry.declare_concept reg c
      | Itype { name; assoc } -> (
        match Registry.find_type reg name with
        | None -> Registry.declare_type reg name ~assoc
        | Some td ->
          let merged =
            td.Registry.td_assoc
            @ List.filter
                (fun (f, _) -> not (List.mem_assoc f td.Registry.td_assoc))
                assoc
          in
          reg.Registry.types <-
            (name, { td with Registry.td_assoc = merged })
            :: List.remove_assoc name reg.Registry.types;
          Registry.touch reg)
      | Iop { name; params; ret } -> Registry.declare_op reg name params ret
      | Imodel { concept; args; axioms } ->
        Registry.declare_model reg concept args ~axioms)
    items

let load_string reg src = load_items reg (parse_string src)

(* ------------------------------------------------------------------ *)
(* Printer (round-trips through the parser)                            *)
(* ------------------------------------------------------------------ *)

let needs_quotes name =
  name = "" || not (String.for_all is_id_char name)

let pp_tyname ppf name =
  if needs_quotes name then Fmt.pf ppf "%S" name else Fmt.string ppf name

let rec pp_ty ppf = function
  | Ctype.Named n -> pp_tyname ppf n
  | Ctype.Var v -> Fmt.string ppf v
  | Ctype.Assoc (base, f) -> Fmt.pf ppf "%a.%s" pp_ty base f
  | Ctype.App (f, args) ->
    Fmt.pf ppf "%s<%a>" f Fmt.(list ~sep:(any ", ") pp_ty) args

let pp_usage ppf (name, args) =
  Fmt.pf ppf "%s<%a>" name Fmt.(list ~sep:(any ", ") pp_ty) args

let pp_requirement ppf = function
  | Concept.Assoc_type { at_name; at_constraints } ->
    let pp_clause ppf = function
      | Concept.Models (c, args) -> Fmt.pf ppf "models %a" pp_usage (c, args)
      | Concept.Same_type (_, b) -> Fmt.pf ppf "== %a" pp_ty b
    in
    if at_constraints = [] then Fmt.pf ppf "type %s;" at_name
    else
      Fmt.pf ppf "type %s where %a;" at_name
        Fmt.(list ~sep:(any ", ") pp_clause)
        at_constraints
  | Concept.Operation s ->
    Fmt.pf ppf "%s : %a -> %a;" s.Concept.op_name
      Fmt.(list ~sep:(any ", ") pp_ty)
      s.Concept.op_params pp_ty s.Concept.op_return
  | Concept.Constraint (Concept.Models (c, args)) ->
    Fmt.pf ppf "requires %a;" pp_usage (c, args)
  | Concept.Constraint (Concept.Same_type (a, b)) ->
    Fmt.pf ppf "same %a == %a;" pp_ty a pp_ty b
  | Concept.Axiom a ->
    if a.Concept.ax_vars = [] then
      Fmt.pf ppf "axiom %s: %S;" a.Concept.ax_name a.Concept.ax_statement
    else
      Fmt.pf ppf "axiom %s(%a): %S;" a.Concept.ax_name
        Fmt.(list ~sep:(any ", ") string)
        a.Concept.ax_vars a.Concept.ax_statement
  | Concept.Complexity_guarantee cg ->
    Fmt.pf ppf "complexity %s %a%s;" cg.Concept.cg_op Complexity.pp
      cg.Concept.cg_bound
      (if cg.Concept.cg_amortized then " amortized" else "")

let pp_concept ppf (c : Concept.t) =
  let pp_refines ppf = function
    | [] -> ()
    | us -> Fmt.pf ppf " refines %a" Fmt.(list ~sep:(any ", ") pp_usage) us
  in
  Fmt.pf ppf "@[<v2>concept %s<%a>%a {@,%a@]@,}" c.Concept.name
    Fmt.(list ~sep:(any ", ") string)
    c.Concept.params pp_refines c.Concept.refines
    Fmt.(list ~sep:cut pp_requirement)
    c.Concept.requirements

let to_source (c : Concept.t) = Fmt.str "%a" pp_concept c
