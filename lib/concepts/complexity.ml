(* Symbolic asymptotic complexity bounds.

   Concepts carry complexity guarantees ("amortized O(1) push_back",
   "O(n log n) sort"); algorithm taxonomies compare algorithms by these
   bounds (Sections 1 and 4 of the paper). We represent a bound as a sum of
   monomials over named size variables, where each monomial tracks a
   polynomial degree and a logarithmic degree per variable. Constants are
   irrelevant asymptotically and are dropped.

   Examples: [linear "n"] is O(n); [mul (linear "n") (log_ "n")] is
   O(n log n); [add (linear "n") (linear "m")] is O(n + m). *)

module Smap = Map.Make (String)

(* A monomial maps a variable to [(poly_degree, log_degree)]; the constant
   monomial is the empty map. *)
type monomial = (int * int) Smap.t

type t = { terms : monomial list } (* sum of monomials; invariant: maximal *)

let monomial_equal (a : monomial) (b : monomial) = Smap.equal ( = ) a b

(* [dominates a b] iff monomial [a] grows at least as fast as [b] for every
   variable, i.e. a >= b pointwise on (poly, log) degrees. *)
let dominates (a : monomial) (b : monomial) =
  Smap.for_all
    (fun v (pb, lb) ->
      match Smap.find_opt v a with
      | Some (pa, la) -> pa > pb || (pa = pb && la >= lb)
      | None -> pb = 0 && lb = 0)
    b

(* Canonical term order: descending on the sorted variable bindings, so
   higher-degree / later-alphabet monomials print first and the constant
   monomial (empty map) prints last. Any total order works for
   determinism; this one keeps "O(n + m)" reading naturally. *)
let compare_monomial (a : monomial) (b : monomial) =
  compare (Smap.bindings b) (Smap.bindings a)

let normalize terms =
  let keep m =
    not
      (List.exists
         (fun m' -> (not (monomial_equal m m')) && dominates m' m)
         terms)
  in
  let kept = List.filter keep terms in
  (* dedupe *)
  List.fold_left
    (fun acc m -> if List.exists (monomial_equal m) acc then acc else m :: acc)
    [] kept
  |> List.sort compare_monomial

let of_terms terms = { terms = normalize terms }

let constant = of_terms [ Smap.empty ]

let poly_log var ~poly ~log =
  of_terms [ Smap.singleton var (poly, log) ]

let linear var = poly_log var ~poly:1 ~log:0
let log_ var = poly_log var ~poly:0 ~log:1
let n_log_n var = poly_log var ~poly:1 ~log:1
let quadratic var = poly_log var ~poly:2 ~log:0
let cubic var = poly_log var ~poly:3 ~log:0
let power var k = poly_log var ~poly:k ~log:0

let add a b = of_terms (a.terms @ b.terms)

let mul_monomial (a : monomial) (b : monomial) : monomial =
  Smap.union (fun _ (pa, la) (pb, lb) -> Some (pa + pb, la + lb)) a b

let mul a b =
  of_terms
    (List.concat_map (fun ma -> List.map (mul_monomial ma) b.terms) a.terms)

let equal a b =
  List.length a.terms = List.length b.terms
  && List.for_all (fun m -> List.exists (monomial_equal m) b.terms) a.terms

(* Partial order on bounds: [leq a b] iff every monomial of [a] is dominated
   by some monomial of [b]. Returns [None] when incomparable growth (e.g.
   O(n) vs O(m)). *)
let leq a b =
  List.for_all (fun ma -> List.exists (fun mb -> dominates mb ma) b.terms)
    a.terms

let compare_growth a b =
  match leq a b, leq b a with
  | true, true -> Some 0
  | true, false -> Some (-1)
  | false, true -> Some 1
  | false, false -> None

(* Log factors are evaluated as log2 clamped below at sizes < 2 so that a
   log term never zeroes the whole monomial at n = 1. Asymptotically the
   clamp is invisible; it only keeps small-size evaluations positive. *)
let eval t ~env =
  let eval_monomial (m : monomial) =
    Smap.fold
      (fun v (p, l) acc ->
        let x = env v in
        let lg = Float.log (Float.max 2. x) /. Float.log 2. in
        acc *. (x ** float_of_int p) *. (lg ** float_of_int l))
      m 1.0
  in
  List.fold_left (fun acc m -> acc +. eval_monomial m) 0.0 t.terms

let basis t =
  List.map
    (fun (m : monomial) ->
      Smap.bindings m |> List.map (fun (v, (p, l)) -> (v, p, l)))
    t.terms

let pp_monomial ppf (m : monomial) =
  if Smap.is_empty m then Fmt.string ppf "1"
  else
    let factors =
      Smap.bindings m
      |> List.concat_map (fun (v, (p, l)) ->
             let poly =
               match p with
               | 0 -> []
               | 1 -> [ v ]
               | k -> [ Printf.sprintf "%s^%d" v k ]
             and log =
               match l with
               | 0 -> []
               | 1 -> [ Printf.sprintf "log %s" v ]
               | k -> [ Printf.sprintf "log^%d %s" k v ]
             in
             poly @ log)
    in
    Fmt.string ppf (String.concat " " factors)

let pp ppf t =
  match t.terms with
  | [] -> Fmt.string ppf "O(0)"
  | ts -> Fmt.pf ppf "O(%a)" Fmt.(list ~sep:(any " + ") pp_monomial) ts

let to_string t = Fmt.str "%a" pp t
