(* The sweep runner. Ladder sizes are fixed constants: measures are
   exact counts, so there is no quota to adapt to and quick mode must
   produce bit-identical series (the s8 hard gate depends on it). *)

type op = {
  op_name : string;
  op_category : string;
  op_var : string;
  op_declared : Gp_concepts.Complexity.t;
  op_expect_violation : bool;
  op_measure : int -> float;
  op_env : int -> string -> float;
}

type point = { pt_n : int; pt_y : float; pt_env : string -> float }

type series = { sr_op : op; sr_points : point list; sr_wall_ns : float }

(* ~geometric ladder, ratio √2: wide enough to separate n from n log n
   (the log factor doubles across it) while the largest dense cubic
   rung stays ~6M steps. *)
let ladder = [ 16; 23; 32; 45; 64; 91; 128; 181; 256 ]

let wall_size = 128

let env_const c _n _var = c

let run ?(wall = false) op =
  let points =
    List.map
      (fun n -> { pt_n = n; pt_y = op.op_measure n; pt_env = op.op_env n })
      ladder
  in
  let wall_ns =
    if wall then begin
      let t0 = Gp_telemetry.Clock.wall () in
      ignore (op.op_measure wall_size);
      Gp_telemetry.Clock.wall () -. t0
    end
    else Float.nan
  in
  { sr_op = op; sr_points = points; sr_wall_ns = wall_ns }
