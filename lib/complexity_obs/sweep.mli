(** The size-sweep runner: drive a registered operation over a
    deterministic size ladder and collect a quota-independent measure at
    each rung.

    Measures are exact counts — kernel inner-loop steps, engine rewrite
    steps, closure obligations, simulated messages — never wall-clock,
    so a sweep is bit-reproducible and the fits downstream can be
    hard-gated by bench-diff. One optional wall-clock probe per
    operation (a single run at a fixed size) rides along as a non-gating
    extra and is skipped entirely in quick mode. *)

type op = {
  op_name : string;  (** unique key, also the bench-metric prefix *)
  op_category : string;  (** subsystem label for the report table *)
  op_var : string;  (** primary size variable of the declared bound *)
  op_declared : Gp_concepts.Complexity.t;
      (** the guarantee under test, same vocabulary the concept
          declarations use *)
  op_expect_violation : bool;
      (** planted oracles set this: the harness passes only when the
          verdict matches the expectation *)
  op_measure : int -> float;
      (** exact work count at size [n]; must be deterministic *)
  op_env : int -> string -> float;
      (** values of auxiliary size variables (["b"], ["nnz"], ...) at
          size [n], for mixed declared bounds; the primary variable is
          supplied by the harness *)
}

type point = {
  pt_n : int;
  pt_y : float;
  pt_env : string -> float;  (** auxiliary variables at this rung *)
}

type series = {
  sr_op : op;
  sr_points : point list;  (** one per ladder rung, ascending *)
  sr_wall_ns : float;  (** single-run probe at {!wall_size}; nan unless
                           requested *)
}

val ladder : int list
(** The deterministic size ladder, roughly geometric with ratio √2:
    [16, 23, 32, 45, 64, 91, 128, 181, 256]. Identical in quick and
    full mode — quick only skips the wall probe. *)

val wall_size : int
(** Size of the optional wall probe (128). *)

val env_const : float -> int -> string -> float
(** [env_const c] maps every auxiliary variable to [c] at every size —
    for single-variable bounds the env is never consulted. *)

val run : ?wall:bool -> op -> series
(** Sweep the ladder. With [wall:true] also time one
    [op_measure wall_size] call with the wall clock; default is no
    probe ([sr_wall_ns = nan]). *)
