module Complexity = Gp_concepts.Complexity

type datum = { x : float; y : float; env : string -> float }

type fitted = {
  f_label : string;
  f_bound : Complexity.t;
  f_coeff : float;
  f_residual : float;
}

let vocabulary var =
  [
    ("1", Complexity.constant);
    ("log " ^ var, Complexity.log_ var);
    (var, Complexity.linear var);
    (var ^ " log " ^ var, Complexity.n_log_n var);
    (var ^ "^2", Complexity.quadratic var);
    (var ^ "^3", Complexity.cubic var);
  ]

(* Work counts are >= 1 in every catalog operation, but synthetic test
   series (and a future zero-work rung) must not blow up the log. *)
let safe_log v = Float.log (Float.max 1e-12 v)

let fit ~label bound data =
  if data = [] then invalid_arg "Fit.fit: empty series";
  let ratios =
    List.map
      (fun d -> safe_log d.y -. safe_log (Complexity.eval bound ~env:d.env))
      data
  in
  let n = float_of_int (List.length ratios) in
  let mean = List.fold_left ( +. ) 0.0 ratios /. n in
  let var =
    List.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.0)) 0.0 ratios /. n
  in
  {
    f_label = label;
    f_bound = bound;
    f_coeff = Float.exp mean;
    f_residual = Float.sqrt var;
  }

let select ~var data =
  let fits =
    List.map (fun (label, bound) -> fit ~label bound data) (vocabulary var)
  in
  let best =
    match fits with
    | [] -> assert false
    | first :: rest ->
      (* smallest growth first; strict improvement required, so exact
         ties keep the slower-growing incumbent *)
      List.fold_left
        (fun acc f -> if f.f_residual < acc.f_residual -. 1e-9 then f else acc)
        first rest
  in
  (fits, best)

let loglog_slope data =
  let pts = List.map (fun d -> (safe_log d.x, safe_log d.y)) data in
  let n = float_of_int (List.length pts) in
  if List.length pts < 2 then 0.0
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then 0.0
    else ((n *. sxy) -. (sx *. sy)) /. denom
  end
