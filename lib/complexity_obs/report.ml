module Complexity = Gp_concepts.Complexity

type verdict = Pass | Violation

type entry = {
  e_series : Sweep.series;
  e_fits : Fit.fitted list;
  e_best : Fit.fitted;
  e_declared : Fit.fitted;
  e_slope : float;
  e_verdict : verdict;
  e_ok : bool;
}

let residual_tolerance = 0.15

let data_of_series (s : Sweep.series) =
  let var = s.Sweep.sr_op.Sweep.op_var in
  List.map
    (fun (p : Sweep.point) ->
      {
        Fit.x = float_of_int p.Sweep.pt_n;
        y = p.Sweep.pt_y;
        env =
          (fun v ->
            if String.equal v var then float_of_int p.Sweep.pt_n
            else p.Sweep.pt_env v);
      })
    s.Sweep.sr_points

let analyze (s : Sweep.series) =
  let op = s.Sweep.sr_op in
  let data = data_of_series s in
  let fits, best = Fit.select ~var:op.Sweep.op_var data in
  let declared =
    Fit.fit
      ~label:(Complexity.to_string op.Sweep.op_declared)
      op.Sweep.op_declared data
  in
  let verdict =
    if
      Complexity.leq best.Fit.f_bound op.Sweep.op_declared
      || declared.Fit.f_residual <= residual_tolerance
    then Pass
    else Violation
  in
  {
    e_series = s;
    e_fits = fits;
    e_best = best;
    e_declared = declared;
    e_slope = Fit.loglog_slope data;
    e_verdict = verdict;
    e_ok = (match verdict with Violation -> true | Pass -> false)
           = op.Sweep.op_expect_violation;
  }

let fitted_degree (f : Fit.fitted) =
  match Complexity.basis f.Fit.f_bound with
  | [ [] ] -> 0.0
  | [ [ (_, poly, log) ] ] ->
    float_of_int poly +. (0.5 *. float_of_int log)
  | _ ->
    (* multi-variable / multi-term bounds have no single exponent *)
    Float.nan

let verdict_name = function Pass -> "pass" | Violation -> "violation"

let expectation_name (op : Sweep.op) =
  if op.Sweep.op_expect_violation then "violation" else "pass"

let table ppf entries =
  Fmt.pf ppf "%-22s %-9s %-12s %-11s %8s %8s %6s  %s@." "operation" "subsystem"
    "declared" "best fit" "resid" "decl-res" "slope" "verdict";
  List.iter
    (fun e ->
      let op = e.e_series.Sweep.sr_op in
      Fmt.pf ppf "%-22s %-9s %-12s %-11s %8.3f %8.3f %6.2f  %s%s@."
        op.Sweep.op_name op.Sweep.op_category
        (Complexity.to_string op.Sweep.op_declared)
        ("O(" ^ e.e_best.Fit.f_label ^ ")")
        e.e_best.Fit.f_residual e.e_declared.Fit.f_residual e.e_slope
        (verdict_name e.e_verdict)
        (if op.Sweep.op_expect_violation then " (planted)"
         else if not e.e_ok then " (UNEXPECTED)"
         else ""))
    entries;
  let unexpected = List.filter (fun e -> not e.e_ok) entries in
  Fmt.pf ppf "@.%d operation(s), %d verdict(s) as expected, %d unexpected@."
    (List.length entries)
    (List.length entries - List.length unexpected)
    (List.length unexpected)

(* Minimal JSON rendering: every string we emit is an identifier or a
   bound pretty-printing, so escaping only needs the basics. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_nan x then "null" else Printf.sprintf "%.6g" x

let to_json entries =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"ops\": [\n";
  List.iteri
    (fun i e ->
      let op = e.e_series.Sweep.sr_op in
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"op\": \"%s\", \"subsystem\": \"%s\", \"declared\": \
            \"%s\", \"best_fit\": \"%s\", \"coeff\": %s, \"residual\": %s, \
            \"declared_residual\": %s, \"fitted_degree\": %s, \"slope\": %s, \
            \"wall_ns\": %s, \"verdict\": \"%s\", \"expected\": \"%s\", \
            \"points\": [%s]}"
           (json_escape op.Sweep.op_name)
           (json_escape op.Sweep.op_category)
           (json_escape (Complexity.to_string op.Sweep.op_declared))
           (json_escape e.e_best.Fit.f_label)
           (json_float e.e_best.Fit.f_coeff)
           (json_float e.e_best.Fit.f_residual)
           (json_float e.e_declared.Fit.f_residual)
           (json_float (fitted_degree e.e_best))
           (json_float e.e_slope)
           (json_float e.e_series.Sweep.sr_wall_ns)
           (verdict_name e.e_verdict)
           (expectation_name op)
           (String.concat ", "
              (List.map
                 (fun (p : Sweep.point) ->
                   Printf.sprintf "[%d, %s]" p.Sweep.pt_n
                     (json_float p.Sweep.pt_y))
                 e.e_series.Sweep.sr_points))))
    entries;
  Buffer.add_string b
    (Printf.sprintf "\n  ],\n  \"ok\": %b\n}\n"
       (List.for_all (fun e -> e.e_ok) entries));
  Buffer.contents b

let export_metrics metrics entries =
  let open Gp_telemetry in
  Metrics.declare metrics ~kind:Metrics.Gauge ~name:"gp_complexity_fitted_degree"
    ~help:"Best-fit growth exponent per operation (poly + 0.5 per log factor)";
  Metrics.declare metrics ~kind:Metrics.Gauge ~name:"gp_complexity_residual"
    ~help:"Log-space RMS residual of the best vocabulary fit";
  Metrics.declare metrics ~kind:Metrics.Gauge ~name:"gp_complexity_violation"
    ~help:"1 when the operation's measured growth violates its declared bound";
  List.iter
    (fun e ->
      let labels = [ ("op", e.e_series.Sweep.sr_op.Sweep.op_name) ] in
      let deg = fitted_degree e.e_best in
      if not (Float.is_nan deg) then
        Metrics.set metrics ~labels "gp_complexity_fitted_degree" deg;
      Metrics.set metrics ~labels "gp_complexity_residual"
        e.e_best.Fit.f_residual;
      Metrics.set metrics ~labels "gp_complexity_violation"
        (match e.e_verdict with Violation -> 1.0 | Pass -> 0.0))
    entries

let ok entries = List.for_all (fun e -> e.e_ok) entries
