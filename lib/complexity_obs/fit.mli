(** Least-squares model fitting over the {!Gp_concepts.Complexity}
    vocabulary (the AutoBench move: measure a curve, fit candidate
    growth models, pick the one with the smallest residual).

    Fitting happens in log space: for a candidate bound [g] the model is
    [y ≈ c·g(n)], so [log y − log g(n)] should be constant; the fitted
    coefficient is the geometric mean of [y/g] and the residual is the
    standard deviation of the log-ratios. Log-space residuals weight
    every ladder rung equally (relative error, not absolute), which is
    what makes lower-order terms wash out as sizes grow. *)

type datum = {
  x : float;  (** primary size *)
  y : float;  (** measured work (clamped below at 1 for the log) *)
  env : string -> float;
      (** every size variable of a candidate bound, including the
          primary one *)
}

type fitted = {
  f_label : string;  (** candidate name, e.g. ["n log n"] *)
  f_bound : Gp_concepts.Complexity.t;
  f_coeff : float;  (** multiplicative constant, geometric-mean fit *)
  f_residual : float;  (** RMS log-space deviation; 0 = perfect fit *)
}

val vocabulary : string -> (string * Gp_concepts.Complexity.t) list
(** The candidate models over one variable, smallest growth first:
    1, log v, v, v log v, v², v³. *)

val fit : label:string -> Gp_concepts.Complexity.t -> datum list -> fitted
(** Fit one candidate bound (evaluated per-datum via
    {!Gp_concepts.Complexity.eval} with the datum's [env]) to the
    series. Raises [Invalid_argument] on an empty series. *)

val select : var:string -> datum list -> fitted list * fitted
(** Fit every vocabulary candidate over [var] and return (all fits in
    vocabulary order, best). Selection walks smallest-growth-first and
    replaces the incumbent only on strict residual improvement, so ties
    resolve to the slowest-growing model. *)

val loglog_slope : datum list -> float
(** Least-squares slope of [log y] against [log x] — the classic
    doubling-experiment exponent, reported as a diagnostic alongside
    the model fit. 0 when the series has fewer than two distinct
    sizes. *)
