(** The registered operations the harness sweeps: structla kernels
    (steps counted on deterministically generated matrices), the
    concept engine (rewrite/guard-memo counters via telemetry, closure
    obligations, the retained linear registry scan), the service LRU,
    and distsim leader election (simulated message counts) — plus one
    deliberately mis-declared oracle.

    Every measure is an exact count, so catalog sweeps are
    bit-reproducible; declared bounds restate the guarantees the
    {!Gp_structla.Decls} taxonomy and EXPERIMENTS.md carry. *)

val oracle_name : string
(** ["oracle_matvec_dense"]: dense matvec declared O(n) on purpose. The
    harness must flag it as a violation — it proves the verdict layer
    has teeth. *)

val ops : unit -> Sweep.op list
(** The full catalog, stable order, [oracle_name] last. *)

val find : string -> Sweep.op option
(** Look an operation up by [op_name]. *)
