(** The verdict and report layer: compare best-fit growth against the
    declared bound and render the result as a table, JSON, or
    Prometheus gauges through the telemetry registry.

    An operation {e passes} when the best-fitting vocabulary model is
    [Complexity.leq] its declared bound, or — for mixed declared bounds
    like O(n·b) or O(nnz) whose variables no single-variable vocabulary
    model is comparable with — when the declared bound itself fits the
    series within {!residual_tolerance}. Otherwise the declaration is
    {e violated}: the implementation grows faster than it promised. *)

type verdict = Pass | Violation

type entry = {
  e_series : Sweep.series;
  e_fits : Fit.fitted list;  (** every vocabulary fit, growth order *)
  e_best : Fit.fitted;  (** best vocabulary fit *)
  e_declared : Fit.fitted;  (** the declared bound fit to the same data *)
  e_slope : float;  (** log-log slope diagnostic *)
  e_verdict : verdict;
  e_ok : bool;  (** verdict matches the operation's expectation *)
}

val residual_tolerance : float
(** 0.15 in log space (≈ ±16% systematic deviation) — generous enough
    for edge effects and lower-order terms, far below the ≥ 0.7 gap a
    wrong growth class leaves across the ladder. *)

val analyze : Sweep.series -> entry

val fitted_degree : Fit.fitted -> float
(** Numeric encoding of a fitted single-variable model for gauges and
    bench keys: poly degree + 0.5 per log factor (1 → 0, log n → 0.5,
    n → 1, n log n → 1.5, n² → 2, n³ → 3). *)

val verdict_name : verdict -> string
(** ["pass"] / ["violation"]. *)

val table : Format.formatter -> entry list -> unit
(** The per-operation report table plus a one-line summary. *)

val to_json : entry list -> string
(** One JSON object: per-op fits, residuals, verdicts, expectations,
    wall probes (null when skipped), and a top-level ["ok"]. *)

val export_metrics : Gp_telemetry.Metrics.t -> entry list -> unit
(** Set [gp_complexity_fitted_degree], [gp_complexity_residual] and
    [gp_complexity_violation] gauges, labelled by operation, into an
    existing metric registry (rendered by
    {!Gp_telemetry.Metrics.to_prometheus}). *)

val ok : entry list -> bool
(** Every verdict matches its expectation: genuine operations pass and
    planted oracles are flagged. *)
