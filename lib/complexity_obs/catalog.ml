module C = Gp_concepts.Complexity

(* ------------------------------------------------------------------ *)
(* structla kernels: generate a structured matrix deterministically,   *)
(* classify it, and read the exact inner-loop step count               *)
(* ------------------------------------------------------------------ *)

let mat structure n =
  match Gp_structla.Mat.generate_dense ~structure ~n ~seed:7 with
  | Some d -> (
    match structure with
    | "banded" -> (
      (* pack the generated band explicitly: the op under test is the
         banded kernel's O(n·b) bound, and at tiny n the detector
         prefers denser classifications for a width-9 band, which
         would silently swap the kernel (and its bound) mid-sweep *)
      match Gp_structla.Mat.pack_banded ~lo:4 ~hi:4 d with
      | Some b -> Gp_structla.Mat.Banded b
      | None -> Gp_structla.Detect.classify_quiet d)
    | _ -> Gp_structla.Detect.classify_quiet d)
  | None -> invalid_arg ("Catalog: unknown structure " ^ structure)

let kernel_steps kind structure n =
  let m = mat structure n in
  float_of_int
    (match kind with
    | `Matvec -> Gp_structla.Kernels.matvec_steps m
    | `Matmul -> Gp_structla.Kernels.matmul_steps m
    | `Solve -> Gp_structla.Kernels.solve_steps m)

(* Auxiliary size variables of the mixed declared bounds, read off the
   same generated matrix the measure uses. *)
let band_width n =
  match Gp_structla.Mat.as_banded (mat "banded" n) with
  | Some b -> float_of_int (b.Gp_structla.Mat.bd_lo + b.Gp_structla.Mat.bd_hi + 1)
  | None -> 1.0

let csr_nnz n =
  float_of_int
    (Gp_structla.Mat.nnz_csr (Gp_structla.Mat.as_csr (mat "csr" n)))

(* ------------------------------------------------------------------ *)
(* concept engine: rewrite/guard counters via telemetry               *)
(* ------------------------------------------------------------------ *)

(* A right-leaning chain of n identity applications: the identity-
   elimination rule fires once per node, so engine step and guard-probe
   counters scale linearly with the chain length. *)
let rewrite_counter counter n =
  let open Gp_simplicissimus in
  let insts = Instances.create () in
  Instances.add insts ~ty:"u" ~op:"+" ~identity:(Expr.VInt 0) ~inverse:"neg"
    Instances.Abelian_group;
  let rec build k =
    if k = 0 then Expr.Var ("x", "u")
    else Expr.Op ("+", "u", [ build (k - 1); Expr.Ident ("u", "+") ])
  in
  let e = build n in
  Gp_telemetry.Tel.with_installed (fun sink ->
      ignore (Engine.rewrite ~rules:Rules.builtin ~insts e);
      Gp_telemetry.Metrics.total sink.Gp_telemetry.Tel.metrics counter)

(* Closure over a refinement chain of height n: the obligation count is
   the explicit-constraint burden Section 2.3 quantifies. *)
let closure_obligations n =
  let open Gp_concepts in
  let reg = Registry.create () in
  Registry.declare_type reg "P";
  for i = 0 to n - 1 do
    let refines =
      if i = 0 then []
      else [ (Printf.sprintf "K%d" (i - 1), [ Ctype.Var "X" ]) ]
    in
    Registry.declare_concept reg
      (Concept.make ~params:[ "X" ] ~refines
         (Printf.sprintf "K%d" i)
         [ Concept.axiom "t" "true" ])
  done;
  (* the default max_depth (8) is tuned for real taxonomies; the sweep
     needs the full chain, so bound recursion by the chain height *)
  float_of_int
    (List.length
       (Propagate.closure ~max_depth:(n + 1) reg
          (Printf.sprintf "K%d" (n - 1))
          [ Ctype.Named "P" ]))

(* The seed's linear find_model scan (the s2 baseline), with entries
   examined counted: two hits (first/last declared model) plus one miss
   that must walk the whole list. *)
let registry_scan n =
  let open Gp_concepts in
  let reg = Registry.create () in
  Registry.declare_concept reg
    (Concept.make ~params:[ "X" ] "K" [ Concept.axiom "t" "true" ]);
  for i = 0 to n - 1 do
    let ty = Printf.sprintf "T%d" i in
    Registry.declare_type reg ty;
    Registry.declare_model reg "K" [ Ctype.Named ty ]
  done;
  let args_equal a1 a2 =
    List.length a1 = List.length a2 && List.for_all2 Ctype.equal a1 a2
  in
  let examined = ref 0 in
  let scan args =
    ignore
      (List.find_opt
         (fun m ->
           incr examined;
           String.equal m.Registry.mo_concept "K"
           && args_equal m.Registry.mo_args args)
         reg.Registry.models)
  in
  scan [ Ctype.Named "T0" ];
  scan [ Ctype.Named (Printf.sprintf "T%d" (n - 1)) ];
  scan [ Ctype.Named "Tmissing" ];
  float_of_int !examined

(* ------------------------------------------------------------------ *)
(* service: LRU churn                                                 *)
(* ------------------------------------------------------------------ *)

(* Fill a capacity-n cache with 2n distinct keys: 2n misses and n
   evictions, zero hits — total stats traffic 3n. *)
let lru_churn n =
  let open Gp_service in
  let cache = Lru.create ~capacity:n "complexity-obs" in
  for i = 0 to (2 * n) - 1 do
    let key = string_of_int i in
    match Lru.find cache key with
    | Some _ -> ()
    | None -> Lru.add cache key i
  done;
  let st = Lru.stats cache in
  float_of_int (st.Lru.st_hits + st.Lru.st_misses + st.Lru.st_evictions)

(* ------------------------------------------------------------------ *)
(* distsim: leader-election message counts in simulated time          *)
(* ------------------------------------------------------------------ *)

let lcr_messages n =
  let open Gp_distsim in
  let uids = Array.init n (fun i -> n - i) in
  let r = Algorithms.Lcr.run ~uids (Topology.ring_unidirectional n) in
  float_of_int r.Engine.metrics.Engine.messages_sent

let hs_messages n =
  let open Gp_distsim in
  let uids = Array.init n (fun i -> n - i) in
  let r = Algorithms.Hs.run ~uids (Topology.ring n) in
  float_of_int r.Engine.metrics.Engine.messages_sent

(* ------------------------------------------------------------------ *)
(* the catalog                                                        *)
(* ------------------------------------------------------------------ *)

let oracle_name = "oracle_matvec_dense"

let no_env = Sweep.env_const 1.0

let op ?(expect_violation = false) ?(env = no_env) ~category ~declared name
    measure =
  {
    Sweep.op_name = name;
    op_category = category;
    op_var = "n";
    op_declared = declared;
    op_expect_violation = expect_violation;
    op_measure = measure;
    op_env = env;
  }

let ops () =
  [
    op ~category:"structla" ~declared:(C.linear "n") "matvec_diagonal"
      (kernel_steps `Matvec "diagonal");
    op ~category:"structla"
      ~declared:(C.mul (C.linear "n") (C.linear "b"))
      ~env:(fun n v -> if String.equal v "b" then band_width n else 1.0)
      "matvec_banded"
      (kernel_steps `Matvec "banded");
    op ~category:"structla" ~declared:(C.linear "nnz")
      ~env:(fun n v -> if String.equal v "nnz" then csr_nnz n else 1.0)
      "matvec_csr"
      (kernel_steps `Matvec "csr");
    op ~category:"structla" ~declared:(C.quadratic "n") "matvec_dense"
      (kernel_steps `Matvec "dense");
    op ~category:"structla" ~declared:(C.linear "n") "matmul_diagonal"
      (kernel_steps `Matmul "diagonal");
    op ~category:"structla" ~declared:(C.cubic "n") "matmul_dense"
      (kernel_steps `Matmul "dense");
    op ~category:"structla" ~declared:(C.linear "n") "solve_diagonal"
      (kernel_steps `Solve "diagonal");
    op ~category:"structla" ~declared:(C.quadratic "n") "solve_triangular"
      (kernel_steps `Solve "triangular");
    op ~category:"structla" ~declared:(C.cubic "n") "solve_dense"
      (kernel_steps `Solve "dense");
    op ~category:"engine" ~declared:(C.linear "n") "rewrite_steps"
      (rewrite_counter "gp_engine_steps_total");
    op ~category:"engine" ~declared:(C.linear "n") "rewrite_guard_probes"
      (rewrite_counter "gp_engine_guard_probes_total");
    op ~category:"concepts" ~declared:(C.linear "n") "closure_obligations"
      closure_obligations;
    op ~category:"concepts" ~declared:(C.linear "n") "registry_scan_linear"
      registry_scan;
    op ~category:"service" ~declared:(C.linear "n") "lru_churn" lru_churn;
    op ~category:"distsim" ~declared:(C.quadratic "n") "lcr_messages"
      lcr_messages;
    op ~category:"distsim" ~declared:(C.n_log_n "n") "hs_messages" hs_messages;
    (* the planted violator: same measure as matvec_dense, but declared
       O(n) — the harness must call this out *)
    op ~category:"oracle" ~declared:(C.linear "n") ~expect_violation:true
      oracle_name
      (kernel_steps `Matvec "dense");
  ]

let find name =
  List.find_opt (fun o -> String.equal o.Sweep.op_name name) (ops ())
