(* The cluster message vocabulary. Requests are referenced by workload
   index: the request array is shared read-only state of the harness, so
   messages stay small and the simulator's metrics measure protocol
   traffic, not payload serialization. *)

type msg =
  | Arrive of int
  | Do_request of { rid : int; attempt : int }
  | Replicate of { rid : int }
  | Reply of { rid : int; replica : int; fp : string; ok : bool;
               cached : bool }
  | Retry_check of { rid : int; attempt : int }
  | Elect of { uid : int }
  | Election_settle
  | Coord of { uid : int }
  | Start_election
  | Ping
  | Heartbeat of { uid : int }
  | Hb_check
  | Shutdown

(* Parse loads concept/type/model definitions — in a deployed cluster
   that is a registry mutation, so it serializes through the leader and
   replicates everywhere. All other pipelines are pure reads. *)
let is_write req =
  match Gp_service.Request.kind req with
  | Gp_service.Request.Kparse -> true
  | _ -> false

let pp ppf = function
  | Arrive rid -> Fmt.pf ppf "arrive#%d" rid
  | Do_request { rid; attempt } -> Fmt.pf ppf "do#%d/try%d" rid attempt
  | Replicate { rid } -> Fmt.pf ppf "replicate#%d" rid
  | Reply { rid; replica; ok; _ } ->
    Fmt.pf ppf "reply#%d from n%d (%s)" rid replica (if ok then "ok" else "err")
  | Retry_check { rid; attempt } -> Fmt.pf ppf "retry-check#%d/try%d" rid attempt
  | Elect { uid } -> Fmt.pf ppf "elect %d" uid
  | Election_settle -> Fmt.string ppf "election-settle"
  | Coord { uid } -> Fmt.pf ppf "coord %d" uid
  | Start_election -> Fmt.string ppf "start-election"
  | Ping -> Fmt.string ppf "ping"
  | Heartbeat { uid } -> Fmt.pf ppf "heartbeat %d" uid
  | Hb_check -> Fmt.string ppf "hb-check"
  | Shutdown -> Fmt.string ppf "shutdown"
