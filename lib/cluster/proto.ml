(* The cluster message vocabulary. Requests are referenced by workload
   index: the request array is shared read-only state of the harness, so
   messages stay small and the simulator's metrics measure protocol
   traffic, not payload serialization.

   Every message that crosses the wire carries a [tc] trace context —
   the (trace id, parent span id) pair the receiver parents its spans
   under. When tracing is off every [tc] is the shared [Context.none]
   block, so the field costs one word per message and no allocation.
   Self-timer messages (Arrive, Retry_check, Election_settle, Hb_check)
   are local alarms, not wire traffic, and carry none. *)

module Context = Gp_telemetry.Context

type msg =
  | Arrive of int
  | Do_request of { rid : int; attempt : int; tc : Context.t }
  | Replicate of { rid : int; tc : Context.t }
  | Reply of { rid : int; replica : int; fp : string; ok : bool;
               cached : bool; tc : Context.t }
  | Retry_check of { rid : int; attempt : int }
  | Elect of { uid : int; tc : Context.t }
  | Election_settle
  | Coord of { uid : int; tc : Context.t }
  | Start_election of { tc : Context.t }
  | Ping of { tc : Context.t }
  | Heartbeat of { uid : int; tc : Context.t }
  | Hb_check
  | Shutdown of { tc : Context.t }
  | Shed of { rid : int; replica : int; tc : Context.t }
  | Reply_due of { rid : int; tc : Context.t }
  | Join of { tc : Context.t }
  | Retire of { tc : Context.t }
  | Elastic of { join : bool; replica : int }

(* Parse loads concept/type/model definitions — in a deployed cluster
   that is a registry mutation, so it serializes through the leader and
   replicates everywhere. All other pipelines are pure reads. *)
let is_write req =
  match Gp_service.Request.kind req with
  | Gp_service.Request.Kparse -> true
  | _ -> false

let context = function
  | Arrive _ | Retry_check _ | Election_settle | Hb_check | Elastic _ ->
    Context.none
  (* Reply_due is a local alarm: its embedded [tc] is payload for the
     Reply it will send, not a wire context of its own *)
  | Reply_due _ -> Context.none
  | Do_request { tc; _ } | Replicate { tc; _ } | Reply { tc; _ }
  | Elect { tc; _ } | Coord { tc; _ } | Start_election { tc }
  | Ping { tc } | Heartbeat { tc; _ } | Shutdown { tc }
  | Shed { tc; _ } | Join { tc } | Retire { tc } ->
    tc

let pp_tc ppf tc =
  if not (Context.is_none tc) then Fmt.pf ppf " [%a]" Context.pp tc

let pp ppf = function
  | Arrive rid -> Fmt.pf ppf "arrive#%d" rid
  | Do_request { rid; attempt; tc } ->
    Fmt.pf ppf "do#%d/try%d%a" rid attempt pp_tc tc
  | Replicate { rid; tc } -> Fmt.pf ppf "replicate#%d%a" rid pp_tc tc
  | Reply { rid; replica; ok; tc; _ } ->
    Fmt.pf ppf "reply#%d from n%d (%s)%a" rid replica
      (if ok then "ok" else "err")
      pp_tc tc
  | Retry_check { rid; attempt } ->
    Fmt.pf ppf "retry-check#%d/try%d" rid attempt
  | Elect { uid; tc } -> Fmt.pf ppf "elect %d%a" uid pp_tc tc
  | Election_settle -> Fmt.string ppf "election-settle"
  | Coord { uid; tc } -> Fmt.pf ppf "coord %d%a" uid pp_tc tc
  | Start_election { tc } -> Fmt.pf ppf "start-election%a" pp_tc tc
  | Ping { tc } -> Fmt.pf ppf "ping%a" pp_tc tc
  | Heartbeat { uid; tc } -> Fmt.pf ppf "heartbeat %d%a" uid pp_tc tc
  | Hb_check -> Fmt.string ppf "hb-check"
  | Shutdown { tc } -> Fmt.pf ppf "shutdown%a" pp_tc tc
  | Shed { rid; replica; tc } ->
    Fmt.pf ppf "shed#%d from n%d%a" rid replica pp_tc tc
  | Reply_due { rid; tc } -> Fmt.pf ppf "reply-due#%d%a" rid pp_tc tc
  | Join { tc } -> Fmt.pf ppf "join%a" pp_tc tc
  | Retire { tc } -> Fmt.pf ppf "retire%a" pp_tc tc
  | Elastic { join; replica } ->
    Fmt.pf ppf "elastic-%s n%d" (if join then "join" else "leave") replica
