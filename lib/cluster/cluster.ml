(* The harness around the Node state machines: configuration and
   failure translation, the Engine run, derived series, the
   single-node consistency audit, and the JSONL dump the CLI audits
   offline. Everything here is simulated time — no wall clock — so
   equal (config, workload) pairs produce bit-identical output. *)

module Engine = Gp_distsim.Engine
module Topology = Gp_distsim.Topology
module Server = Gp_service.Server
module Request = Gp_service.Request
module Lru = Gp_service.Lru
module Wire = Gp_service.Wire

type failure =
  | Drop of float
  | Crash_replica of { replica : int; at : float }
  | Crash_leader of { at : float }
  | Partition of { groups : int list list; from_ : float; until : float }

type config = {
  replicas : int;
  vnodes : int;
  affinity : bool;
  timing : Engine.timing;
  seed : int;
  failures : failure list;
  tuning : Node.tuning;
  arrivals : float array option;
  elastic : Node.elastic_event list;
  server_config : Server.config;
  max_time : float;
  max_events : int;
  trace : bool;
}

let default_config =
  {
    replicas = 3;
    vnodes = 64;
    affinity = true;
    timing = Engine.Synchronous;
    seed = 42;
    failures = [];
    tuning = Node.default_tuning;
    arrivals = None;
    elastic = [];
    server_config =
      { Server.default_config with
        timeout = None;
        now = (fun () -> 0.0); (* replaced by each node's simulated clock *)
        slow_log = 0;
        flight_capacity = 0 };
    max_time = 100_000.0;
    max_events = 2_000_000;
    trace = false;
  }

type result = {
  r_config : config;
  r_requests : Request.t array;
  r_records : Node.record option array;
  r_completed : int;
  r_metrics : Engine.metrics;
  r_elections : int;
  r_failovers : (float * float) list;
  r_leaders : (float * int) list;
  r_cache_hits : int;
  r_cache_misses : int;
  r_shed_admission : int;
  r_shed_overload : int;
  r_promotions : int;
  r_promoted_keys : string list;
  r_joined : int;
  r_left : int;
  r_handoffs : int;
  r_peak_inflight : int;
  r_moved_keys : int;
  r_moved_bound : int;
  r_traces : (int * Gp_telemetry.Trace.span list) list;
  r_node_metrics : (int * Gp_telemetry.Metrics.t) list;
}

(* The initial election is FloodMax over replica ids, so its winner is
   the highest id — which is what Crash_leader targets. *)
let to_engine_failure ~replicas = function
  | Drop prob -> Engine.Drop_links { prob }
  | Crash_replica { replica; at } -> Engine.Crash { node = replica; at }
  | Crash_leader { at } -> Engine.Crash { node = replicas; at }
  | Partition { groups; from_; until } ->
    Engine.Partition { groups; from_; until }

(* Minimal-movement accounting, precomputed against the workload's
   distinct keys: replay the membership schedule over a shadow ring and
   count, per event, how many keys changed shard owner (moved) and how
   many the minimal-movement contract allows — exactly the keys on the
   joiner's new arcs, or the leaver's old ones (bound). Consistent
   hashing should make these equal; the qcheck property and the S10
   gate both assert moved <= bound. *)
let movement ~ring ~elastic keys =
  let moved = ref 0 and bound = ref 0 in
  let _final =
    List.fold_left
      (fun ring ev ->
        let ring' =
          if ev.Node.el_join then Hash_ring.add_replica ring ev.Node.el_replica
          else Hash_ring.remove_replica ring ev.Node.el_replica
        in
        List.iter
          (fun key ->
            let before = Hash_ring.shard ring key in
            let after = Hash_ring.shard ring' key in
            if before <> after then incr moved;
            if (ev.Node.el_join && after = ev.Node.el_replica)
               || ((not ev.Node.el_join) && before = ev.Node.el_replica)
            then incr bound)
          keys;
        ring')
      ring elastic
  in
  (!moved, !bound)

let distinct_keys reqs =
  let seen = Hashtbl.create 64 in
  Array.fold_left
    (fun acc req ->
      let k = Request.key req in
      if Hashtbl.mem seen k then acc
      else (
        Hashtbl.add seen k ();
        k :: acc))
    [] reqs
  |> List.rev

let run ?(config = default_config) ~declare_standard reqs =
  if config.replicas < 1 then invalid_arg "Cluster.run: replicas < 1";
  (match config.arrivals with
   | Some arr when Array.length arr < Array.length reqs ->
     invalid_arg "Cluster.run: arrivals shorter than the workload"
   | _ -> ());
  let elastic =
    List.sort (fun a b -> compare a.Node.el_at b.Node.el_at) config.elastic
  in
  List.iter
    (fun ev ->
      if ev.Node.el_replica < 1 then
        invalid_arg "Cluster.run: elastic replica < 1";
      if ev.Node.el_at <= 0.0 then
        invalid_arg "Cluster.run: elastic event at non-positive time";
      if (not config.affinity) && ev.Node.el_join then
        invalid_arg "Cluster.run: elastic join needs key-sharded reads")
    elastic;
  (* Late joiners occupy node slots above the initial replicas; size the
     topology for the highest slot any event names. *)
  let n =
    List.fold_left
      (fun acc ev -> max acc ev.Node.el_replica)
      config.replicas elastic
  in
  let ring =
    Hash_ring.create ~vnodes:config.vnodes
      ~replicas:(List.init config.replicas (fun i -> i + 1))
      ()
  in
  let moved_keys, moved_bound =
    match elastic with
    | [] -> (0, 0)
    | _ -> movement ~ring ~elastic (distinct_keys reqs)
  in
  let active = Array.init (n + 1) (fun i -> i >= 1 && i <= config.replicas) in
  (* Tracing artifacts: one span ring and one metrics registry per
     node. Capacity is generous — spans are ~6 per request at the
     router plus a couple per replica touch — and the ring discipline
     still bounds memory if a scenario blows past it. Request traces
     use their rid as trace id; aux traces (elections, probes) start
     above the workload, with the initial election's ids
     pre-allocated. *)
  let node_traces =
    if config.trace then
      Array.init (n + 1) (fun _ ->
          Gp_telemetry.Trace.create ~capacity:65536 ~clock:(fun () -> 0.0) ())
    else [||]
  in
  let node_metrics =
    if config.trace then
      Array.init (n + 1) (fun _ -> Gp_telemetry.Metrics.create ())
    else [||]
  in
  let world =
    {
      Node.reqs;
      ring;
      n_replicas = n;
      active;
      affinity = config.affinity;
      tuning = config.tuning;
      arrivals = config.arrivals;
      elastic;
      server_config = config.server_config;
      declare_standard;
      servers = Array.make (n + 1) None;
      records = Array.make (Array.length reqs) None;
      completed = 0;
      elections = 0;
      failovers = [];
      leader_log = [];
      shed_admission = 0;
      shed_overload = 0;
      promotions = 0;
      promoted_keys = [];
      joined = 0;
      left = 0;
      handoffs = 0;
      peak_inflight = 0;
      trace_on = config.trace;
      node_traces;
      node_metrics;
      next_span = (if config.trace then 1 else 0);
      next_trace =
        (if config.trace then Array.length reqs + 1 else 0);
      el0_trace = (if config.trace then Array.length reqs else 0);
      el0_span = (if config.trace then 1 else 0);
    }
  in
  let engine_config =
    {
      Engine.timing = config.timing;
      (* the initial leader is the highest initially-active id, not a
         slot reserved for a late joiner *)
      failures =
        List.map (to_engine_failure ~replicas:config.replicas) config.failures;
      seed = config.seed;
      max_time = config.max_time;
      max_events = config.max_events;
    }
  in
  let res =
    Engine.run ~config:engine_config
      (Topology.complete (n + 1))
      (Node.algorithm world)
  in
  let hits, misses =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some server ->
          List.fold_left
            (fun (h, m) st -> (h + st.Lru.st_hits, m + st.Lru.st_misses))
            acc
            (Server.cache_stats server))
      (0, 0) world.Node.servers
  in
  {
    r_config = config;
    r_requests = reqs;
    r_records = world.Node.records;
    r_completed = world.Node.completed;
    r_metrics = res.Engine.metrics;
    r_elections = world.Node.elections;
    r_failovers = List.rev world.Node.failovers;
    r_leaders = List.rev world.Node.leader_log;
    r_cache_hits = hits;
    r_cache_misses = misses;
    r_shed_admission = world.Node.shed_admission;
    r_shed_overload = world.Node.shed_overload;
    r_promotions = world.Node.promotions;
    r_promoted_keys = List.rev world.Node.promoted_keys;
    r_joined = world.Node.joined;
    r_left = world.Node.left;
    r_handoffs = world.Node.handoffs;
    r_peak_inflight = world.Node.peak_inflight;
    r_moved_keys = moved_keys;
    r_moved_bound = moved_bound;
    r_traces =
      (if config.trace then
         List.init (n + 1) (fun i ->
             (i, Gp_telemetry.Trace.spans node_traces.(i)))
       else []);
    r_node_metrics =
      (if config.trace then
         List.init (n + 1) (fun i -> (i, node_metrics.(i)))
       else []);
  }

(* -------------------------------------------------------------- *)
(* Derived series                                                  *)
(* -------------------------------------------------------------- *)

let messages_per_request r =
  float_of_int r.r_metrics.Engine.messages_sent
  /. float_of_int (max 1 r.r_completed)

let hit_ratio r =
  let total = r.r_cache_hits + r.r_cache_misses in
  if total = 0 then 0.0 else float_of_int r.r_cache_hits /. float_of_int total

let fold_records f acc r =
  Array.fold_left
    (fun acc -> function None -> acc | Some rc -> f acc rc)
    acc r.r_records

let mean_latency r =
  if r.r_completed = 0 then 0.0
  else
    fold_records
      (fun acc rc -> acc +. (rc.Node.rc_done -. rc.Node.rc_arrive))
      0.0 r
    /. float_of_int r.r_completed

let max_latency r =
  fold_records
    (fun acc rc -> Float.max acc (rc.Node.rc_done -. rc.Node.rc_arrive))
    0.0 r

let retried r =
  fold_records
    (fun acc rc -> if rc.Node.rc_attempts > 1 then acc + 1 else acc)
    0 r

let shed_total r = r.r_shed_admission + r.r_shed_overload

let shed_ratio r =
  if r.r_completed = 0 then 0.0
  else float_of_int (shed_total r) /. float_of_int r.r_completed

(* Latency percentile over served (non-shed) records; q in [0,1]. *)
let latency_percentile r q =
  let lats =
    fold_records
      (fun acc rc ->
        if rc.Node.rc_shed then acc
        else (rc.Node.rc_done -. rc.Node.rc_arrive) :: acc)
      [] r
  in
  match lats with
  | [] -> 0.0
  | lats ->
    let a = Array.of_list lats in
    Array.sort compare a;
    let n = Array.length a in
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    a.(max 0 (min (n - 1) i))

let timing_name = function
  | Engine.Synchronous -> "synchronous"
  | Engine.Asynchronous { max_delay } ->
    Printf.sprintf "asynchronous(max %g)" max_delay
  | Engine.Partially_synchronous { bound } ->
    Printf.sprintf "partially-synchronous(bound %g)" bound

let pp_summary ppf r =
  let writes =
    Array.fold_left
      (fun acc req -> if Proto.is_write req then acc + 1 else acc)
      0 r.r_requests
  in
  let m = r.r_metrics in
  Fmt.pf ppf "cluster: %d replicas + router, %s, seed %d, %s reads@."
    r.r_config.replicas
    (timing_name r.r_config.timing)
    r.r_config.seed
    (if r.r_config.affinity then "key-sharded" else "round-robin");
  Fmt.pf ppf "workload: %d requests (%d writes), completed %d/%d@."
    (Array.length r.r_requests) writes r.r_completed
    (Array.length r.r_requests);
  Fmt.pf ppf
    "traffic: %d sent, %d delivered, %d dropped — %.2f msgs/request@."
    m.Engine.messages_sent m.Engine.messages_delivered
    m.Engine.messages_dropped (messages_per_request r);
  Fmt.pf ppf "retries: %d requests redispatched; elections: %d" (retried r)
    r.r_elections;
  (match r.r_failovers with
   | [] -> Fmt.pf ppf "; failovers: none@."
   | fos ->
     let lats = List.map (fun (t0, t1) -> t1 -. t0) fos in
     Fmt.pf ppf "; failovers: %d (%s %s)@." (List.length fos)
       (if List.length fos > 1 then "latencies" else "latency")
       (String.concat ", " (List.map (Printf.sprintf "%.2f") lats)));
  Fmt.pf ppf "latency (sim): mean %.2f, max %.2f@." (mean_latency r)
    (max_latency r);
  Fmt.pf ppf "caches: %.1f%% hit ratio (%d hits / %d lookups)@."
    (100.0 *. hit_ratio r)
    r.r_cache_hits
    (r.r_cache_hits + r.r_cache_misses);
  (* Scenario lines only when the corresponding machinery was armed, so
     pre-scenario summaries stay byte-identical. *)
  if r.r_config.tuning.Node.queue_bound > 0
     || r.r_config.tuning.Node.shed_backlog > 0.0
  then
    Fmt.pf ppf
      "overload: %d shed (%d admission, %d overload) — %.1f%%, peak queue %d@."
      (shed_total r) r.r_shed_admission r.r_shed_overload
      (100.0 *. shed_ratio r)
      r.r_peak_inflight;
  if r.r_config.tuning.Node.hot_capacity > 0 then
    Fmt.pf ppf "hot keys: %d promoted%s@." r.r_promotions
      (match r.r_promoted_keys with
       | [] -> ""
       | ks -> " (" ^ String.concat ", " ks ^ ")");
  if r.r_config.elastic <> [] then
    Fmt.pf ppf
      "elastic: %d joined, %d left, %d handoffs; moved %d keys (bound %d)@."
      r.r_joined r.r_left r.r_handoffs r.r_moved_keys r.r_moved_bound;
  Fmt.pf ppf "sim: %d events, finish time %.2f@." m.Engine.events
    m.Engine.finish_time

(* -------------------------------------------------------------- *)
(* Consistency audit                                               *)
(* -------------------------------------------------------------- *)

type divergence = {
  dv_rid : int;
  dv_cluster_fp : string;
  dv_single_fp : string;
}

type audit = {
  au_total : int;
  au_compared : int;
  au_missing : int;
  au_shed : int;
  au_divergences : divergence list;
}

let audit_ok a = a.au_missing = 0 && a.au_divergences = []

(* Compare (rid, cluster fingerprint) pairs against a fresh single
   server serving the same requests in rid (= arrival) order. Shed
   verdicts carry no fingerprint and are excluded by construction —
   [shed] keeps the accounting honest: compared + missing + shed =
   total. Shared by the in-memory audit and the dump audit. *)
let audit_pairs ~server ~total ~shed pairs =
  let compared = ref 0 in
  let divergences = ref [] in
  List.iter
    (fun (rid, req, cluster_fp) ->
      incr compared;
      let rsp = Server.handle ~id:rid server req in
      let fp = Request.response_fingerprint rsp in
      if not (String.equal fp cluster_fp) then
        divergences :=
          { dv_rid = rid; dv_cluster_fp = cluster_fp; dv_single_fp = fp }
          :: !divergences)
    pairs;
  {
    au_total = total;
    au_compared = !compared;
    au_missing = total - !compared - shed;
    au_shed = shed;
    au_divergences = List.rev !divergences;
  }

let audit ~declare_standard r =
  let server =
    Server.create ~config:r.r_config.server_config ~declare_standard ()
  in
  let shed = ref 0 in
  let pairs =
    List.filter_map
      (function
        | None -> None
        | Some rc when rc.Node.rc_shed ->
          incr shed;
          None
        | Some rc ->
          Some (rc.Node.rc_rid, r.r_requests.(rc.Node.rc_rid), rc.Node.rc_fp))
      (Array.to_list r.r_records)
  in
  audit_pairs ~server ~total:(Array.length r.r_requests) ~shed:!shed pairs

let pp_audit ppf a =
  Fmt.pf ppf "audit: %d/%d compared, %d missing, %s%d divergent@." a.au_compared
    a.au_total a.au_missing
    (if a.au_shed > 0 then Printf.sprintf "%d shed, " a.au_shed else "")
    (List.length a.au_divergences);
  List.iter
    (fun d ->
      Fmt.pf ppf "  rid %d: cluster %s vs single %s@." d.dv_rid
        d.dv_cluster_fp d.dv_single_fp)
    a.au_divergences;
  if audit_ok a then
    Fmt.pf ppf "audit PASS: every replicated answer matches single-node@."
  else Fmt.pf ppf "audit FAIL@."

(* -------------------------------------------------------------- *)
(* Dump / offline audit                                            *)
(* -------------------------------------------------------------- *)

let dump r =
  let buf = Buffer.create 4096 in
  let header =
    Wire.Obj
      [
        ("gp_cluster", Wire.Int 1);
        ("replicas", Wire.Int r.r_config.replicas);
        ("vnodes", Wire.Int r.r_config.vnodes);
        ("affinity", Wire.Bool r.r_config.affinity);
        ("seed", Wire.Int r.r_config.seed);
        ("n", Wire.Int (Array.length r.r_requests));
        ("completed", Wire.Int r.r_completed);
        ("elections", Wire.Int r.r_elections);
        ("shed", Wire.Int (shed_total r));
        ("promoted", Wire.Int r.r_promotions);
        ("joined", Wire.Int r.r_joined);
        ("left", Wire.Int r.r_left);
        ("server_config",
         Wire.parse (Server.config_to_line r.r_config.server_config));
      ]
  in
  Buffer.add_string buf (Wire.to_string header);
  Buffer.add_char buf '\n';
  Array.iter
    (function
      | None -> ()
      | Some rc ->
        let line =
          Wire.Obj
            ([
              ("rid", Wire.Int rc.Node.rc_rid);
              ("kind", Wire.Str (Request.kind_name rc.Node.rc_kind));
              ("write", Wire.Bool rc.Node.rc_write);
              ("replica", Wire.Int rc.Node.rc_replica);
              ("fp", Wire.Str rc.Node.rc_fp);
              ("ok", Wire.Bool rc.Node.rc_ok);
              ("cached", Wire.Bool rc.Node.rc_cached);
              ("attempts", Wire.Int rc.Node.rc_attempts);
              ("arrive", Wire.Float rc.Node.rc_arrive);
            ]
            @ (if rc.Node.rc_shed then [ ("shed", Wire.Bool true) ] else [])
            @ [
              ("done", Wire.Float rc.Node.rc_done);
              ("req",
               Wire.parse
                 (Wire.request_to_line ~id:rc.Node.rc_rid
                    r.r_requests.(rc.Node.rc_rid)));
            ])
        in
        Buffer.add_string buf (Wire.to_string line);
        Buffer.add_char buf '\n')
    r.r_records;
  Buffer.contents buf

let field name = function
  | Wire.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* Byte position of [name] inside the raw dump line, for the wire's
   positioned-error convention ("at <pos>: ..."). The field name always
   occurs in the line the parse just consumed, so 0 is only a fallback. *)
let field_pos line name =
  let n = String.length line and m = String.length name in
  let rec go i =
    if i + m > n then 0
    else if String.sub line i m = name then i
    else go (i + 1)
  in
  go 0

let malformed line name what =
  raise
    (Wire.Error
       (Printf.sprintf "at %d: bad field %S (%s)" (field_pos line name) name
          what))

(* An optional non-negative Int field: absent is fine (pre-scenario
   dumps), any other shape is a positioned rejection. *)
let opt_count line obj name =
  match field name obj with
  | None -> 0
  | Some (Wire.Int i) when i >= 0 -> i
  | Some _ -> malformed line name "want a non-negative int"

let audit_dump ~declare_standard doc =
  let lines =
    String.split_on_char '\n' doc
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty dump"
  | header_line :: records -> (
    try
      let header = Wire.parse header_line in
      (match field "gp_cluster" header with
       | Some (Wire.Int 1) -> ()
       | _ -> raise (Wire.Error "not a gp_cluster dump (bad header)"));
      let total =
        match field "n" header with
        | Some (Wire.Int n) -> n
        | _ -> raise (Wire.Error "header missing workload size")
      in
      (* validate the scenario header counters even though the audit
         recomputes shed from the records themselves *)
      let (_ : int) = opt_count header_line header "shed" in
      let (_ : int) = opt_count header_line header "promoted" in
      let (_ : int) = opt_count header_line header "joined" in
      let (_ : int) = opt_count header_line header "left" in
      let server_config =
        match field "server_config" header with
        | Some obj -> (
          match Server.config_of_line (Wire.to_string obj) with
          | Ok c -> c
          | Error e -> raise (Wire.Error ("bad server_config: " ^ e)))
        | None -> raise (Wire.Error "header missing server_config")
      in
      let shed = ref 0 in
      let pairs =
        List.filter_map
          (fun line ->
            let obj = Wire.parse line in
            let rid =
              match field "rid" obj with
              | Some (Wire.Int i) -> i
              | _ -> raise (Wire.Error "record missing rid")
            in
            let is_shed =
              match field "shed" obj with
              | None -> false
              | Some (Wire.Bool b) -> b
              | Some _ -> malformed line "shed" "want a bool"
            in
            if is_shed then (
              incr shed;
              None)
            else
              let fp =
                match field "fp" obj with
                | Some (Wire.Str s) -> s
                | _ -> raise (Wire.Error "record missing fp")
              in
              let req =
                match field "req" obj with
                | Some obj -> (
                  match Wire.request_of_line (Wire.to_string obj) with
                  | Ok (_, req) -> req
                  | Error e -> raise (Wire.Error ("bad request: " ^ e)))
                | None -> raise (Wire.Error "record missing req")
              in
              Some (rid, req, fp))
          records
      in
      let server =
        Server.create ~config:server_config ~declare_standard ()
      in
      Ok (audit_pairs ~server ~total ~shed:!shed pairs)
    with Wire.Error e -> Error e)
