(** The cluster wire vocabulary: what router and replicas exchange
    inside the simulator.

    Requests travel by workload index ([rid]) — the request array is
    shared, read-only, by every node, so a message carries the index
    and the metrics stay about counts and time, not payload bytes.
    Replies carry the serving replica's response fingerprint; the audit
    compares exactly these against a single-node replay.

    Every message that actually crosses the wire also carries a [tc]
    trace context ({!Gp_telemetry.Context.t}): the sender's (trace id,
    parent span id), which the receiver parents its spans under — this
    is how one request's journey links into a single cross-node tree.
    With tracing disabled every [tc] is the shared
    {!Gp_telemetry.Context.none} block (one word per message, zero
    allocation). Self-timer messages are local alarms, not wire
    traffic, and carry no context. *)

type msg =
  | Arrive of int  (** router self-timer: workload item [rid] arrives *)
  | Do_request of { rid : int; attempt : int; tc : Gp_telemetry.Context.t }
      (** router -> replica: serve this request (reads go to the shard
          owner or a failover successor; writes go to the leader).
          [tc] parents the replica's serve span under the router's
          attempt span. *)
  | Replicate of { rid : int; tc : Gp_telemetry.Context.t }
      (** leader -> follower: apply a write-path request too, keeping
          every replica's registry and caches in the same state. [tc]
          parents the follower's span under the leader's serve. *)
  | Reply of { rid : int; replica : int; fp : string; ok : bool;
               cached : bool; tc : Gp_telemetry.Context.t }
      (** replica -> router: served, with the response fingerprint.
          [tc] echoes the serve span. *)
  | Retry_check of { rid : int; attempt : int }
      (** router self-timer: if [rid] is still pending, resend with
          capped exponential backoff *)
  | Elect of { uid : int; tc : Gp_telemetry.Context.t }
      (** replica -> replicas: FloodMax round *)
  | Election_settle  (** replica self-timer: the round is over *)
  | Coord of { uid : int; tc : Gp_telemetry.Context.t }
      (** the round's winner announces itself *)
  | Start_election of { tc : Gp_telemetry.Context.t }
      (** router -> replicas: leader presumed dead; [tc] is the
          router's election root span *)
  | Ping of { tc : Gp_telemetry.Context.t }
      (** router -> leader: liveness probe. Router-driven so that
          replicas hold no recurring timers and the simulation
          quiesces once the router stops. *)
  | Heartbeat of { uid : int; tc : Gp_telemetry.Context.t }
      (** leader -> router: still alive; [tc] echoes the probe *)
  | Hb_check  (** router self-timer: probe the leader / declare it dead *)
  | Shutdown of { tc : Gp_telemetry.Context.t }
      (** router -> all: workload complete, quiesce *)
  | Shed of { rid : int; replica : int; tc : Gp_telemetry.Context.t }
      (** replica -> router: typed overload rejection — the replica's
          backlog exceeds its bound, so the request is refused rather
          than queued. The router records a shed verdict for the
          client; shedding is final, never a hang. *)
  | Reply_due of { rid : int; tc : Gp_telemetry.Context.t }
      (** replica self-timer: the simulated service time for [rid] has
          elapsed — send the memoized Reply (and the write fan-out) now.
          [tc] is the serve span the Reply will echo, not a wire
          context. *)
  | Join of { tc : Gp_telemetry.Context.t }
      (** router -> replica: you are on the ring as of now; the state
          handoff (replays of completed writes as {!Replicate}s)
          follows. *)
  | Retire of { tc : Gp_telemetry.Context.t }
      (** router -> replica: you left the ring — quiesce. In-flight
          reads against the leaver time out at the router and retry on
          the new ring's successors. *)
  | Elastic of { join : bool; replica : int }
      (** router self-timer: apply a scheduled membership change *)

val is_write : Gp_service.Request.t -> bool
(** Registry-mutating requests — the ones that must serialize through
    the leader and replicate to every node. [Parse] loads definitions,
    so it is the write path; every other pipeline is a read. *)

val context : msg -> Gp_telemetry.Context.t
(** The trace context a message carries ({!Gp_telemetry.Context.none}
    for self-timers). *)

val pp : Format.formatter -> msg -> unit
