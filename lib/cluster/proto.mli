(** The cluster wire vocabulary: what router and replicas exchange
    inside the simulator.

    Requests travel by workload index ([rid]) — the request array is
    shared, read-only, by every node, so a message carries the index
    and the metrics stay about counts and time, not payload bytes.
    Replies carry the serving replica's response fingerprint; the audit
    compares exactly these against a single-node replay. *)

type msg =
  | Arrive of int  (** router self-timer: workload item [rid] arrives *)
  | Do_request of { rid : int; attempt : int }
      (** router -> replica: serve this request (reads go to the shard
          owner or a failover successor; writes go to the leader) *)
  | Replicate of { rid : int }
      (** leader -> follower: apply a write-path request too, keeping
          every replica's registry and caches in the same state *)
  | Reply of { rid : int; replica : int; fp : string; ok : bool;
               cached : bool }
      (** replica -> router: served, with the response fingerprint *)
  | Retry_check of { rid : int; attempt : int }
      (** router self-timer: if [rid] is still pending, resend with
          capped exponential backoff *)
  | Elect of { uid : int }  (** replica -> replicas: FloodMax round *)
  | Election_settle  (** replica self-timer: the round is over *)
  | Coord of { uid : int }  (** the round's winner announces itself *)
  | Start_election  (** router -> replicas: leader presumed dead *)
  | Ping  (** router -> leader: liveness probe. Router-driven so that
              replicas hold no recurring timers and the simulation
              quiesces once the router stops. *)
  | Heartbeat of { uid : int }  (** leader -> router: still alive *)
  | Hb_check  (** router self-timer: probe the leader / declare it dead *)
  | Shutdown  (** router -> all: workload complete, quiesce *)

val is_write : Gp_service.Request.t -> bool
(** Registry-mutating requests — the ones that must serialize through
    the leader and replicate to every node. [Parse] loads definitions,
    so it is the write path; every other pipeline is a read. *)

val pp : Format.formatter -> msg -> unit
