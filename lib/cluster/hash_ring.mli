(** Consistent hashing over replica ids.

    Each replica owns [vnodes] points on a digest ring; a content key is
    served by the owner of the first point at or after the key's hash
    (wrapping). Purely deterministic — points come from [Digest.string]
    of the replica's name — so the same (replicas, vnodes) pair always
    produces the same placement, and adding or removing one replica
    moves only the keys on its arcs (property-tested). *)

type t

val create : ?vnodes:int -> replicas:int list -> unit -> t
(** [replicas] are node ids (any ints, typically [1..n]); [vnodes]
    defaults to 64 points per replica. Raises [Invalid_argument] on an
    empty replica list or [vnodes < 1]. *)

val replicas : t -> int list
(** The replica ids, ascending. *)

val vnodes : t -> int
(** Points per replica, as given to {!create}. *)

val add_replica : t -> int -> t
(** The ring with one more replica, at the same [vnodes]. Identical to
    {!create} over the union — so only the keys on the newcomer's arcs
    change owner ({i minimal movement}: [shard] differs on a key iff the
    new ring shards it to the newcomer). Raises [Invalid_argument] if
    the replica is already present. *)

val remove_replica : t -> int -> t
(** The ring without one replica. Only the departed replica's keys
    change owner: [shard] differs on a key iff the old ring sharded it
    to the leaver. Raises [Invalid_argument] if the replica is absent
    or is the last one. *)

val shard : t -> string -> int
(** The replica owning this content key. *)

val successors : t -> string -> int list
(** All replicas in ring order starting at the key's owner, each
    appearing once — the failover walk: entry [0] is {!shard}, entry
    [k] is the k-th distinct replica clockwise from it. *)

val spread : t -> string list -> (int * int) list
(** [(replica, keys owned)] for a key population, ascending by replica
    id — the balance diagnostic. *)
