(* Consistent hashing: replicas own [vnodes] points each on a ring of
   hashes; a key belongs to the owner of the first point clockwise from
   the key's own hash. Digest (MD5) keeps placement deterministic across
   processes — no Hashtbl.hash, whose layout is not a contract. *)

type t = {
  replicas : int list; (* ascending *)
  vnodes : int;
  points : (string * int) array; (* (hash, replica), sorted by hash *)
}

(* The first 8 digest bytes as a hex string: compares lexicographically
   like the integer it encodes, which is all ring order needs. *)
let hash s = String.sub (Digest.to_hex (Digest.string s)) 0 16

let create ?(vnodes = 64) ~replicas () =
  if replicas = [] then invalid_arg "Hash_ring.create: no replicas";
  if vnodes < 1 then invalid_arg "Hash_ring.create: vnodes < 1";
  let replicas = List.sort_uniq compare replicas in
  let points =
    List.concat_map
      (fun r ->
        List.init vnodes (fun v ->
            (hash (Printf.sprintf "replica-%d#%d" r v), r)))
      replicas
    |> Array.of_list
  in
  Array.sort compare points;
  { replicas; vnodes; points }

let replicas t = t.replicas

let vnodes t = t.vnodes

(* Elasticity: membership changes rebuild the ring from the new replica
   set. Point hashes depend only on (replica, vnode), so the rebuilt
   ring is bit-identical to [create] over the same set — and minimal
   movement is structural: a key changes owner iff the first point
   clockwise from it belongs to the joining (resp. leaving) replica, so
   exactly the keys on that replica's arcs move. *)
let add_replica t r =
  if List.mem r t.replicas then
    invalid_arg "Hash_ring.add_replica: replica already on the ring";
  create ~vnodes:t.vnodes ~replicas:(r :: t.replicas) ()

let remove_replica t r =
  if not (List.mem r t.replicas) then
    invalid_arg "Hash_ring.remove_replica: replica not on the ring";
  match List.filter (fun x -> x <> r) t.replicas with
  | [] -> invalid_arg "Hash_ring.remove_replica: cannot empty the ring"
  | rest -> create ~vnodes:t.vnodes ~replicas:rest ()

(* Index of the first point with hash >= h, wrapping to 0. *)
let locate t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let shard t key = snd t.points.(locate t (hash key))

let successors t key =
  let n = Array.length t.points in
  let k = List.length t.replicas in
  let start = locate t (hash key) in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let i = ref 0 in
  while !i < n && Hashtbl.length seen < k do
    let r = snd t.points.((start + !i) mod n) in
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      out := r :: !out
    end;
    incr i
  done;
  List.rev !out

let spread t keys =
  let counts = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace counts r 0) t.replicas;
  List.iter
    (fun k ->
      let r = shard t k in
      Hashtbl.replace counts r (Hashtbl.find counts r + 1))
    keys;
  List.map (fun r -> (r, Hashtbl.find counts r)) t.replicas
