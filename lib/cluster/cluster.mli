(** The cluster harness: build a simulated sharded/replicated serving
    cluster, run a workload through it under seeded failure injection,
    and audit the answers against a single-node replay.

    Everything is simulated time inside {!Gp_distsim.Engine}: equal
    configurations and workloads give bit-identical results — metrics,
    latencies, failover timings and all — independent of wall clock or
    host load. The audit closes the loop on consistency: every accepted
    reply carries a {!Gp_service.Request.response_fingerprint}, and
    {!audit} re-serves the same workload on one bare
    {!Gp_service.Server} and diffs digests. Failover may serve a late
    answer, never a wrong one. *)

(** Failure injection, in cluster vocabulary (node 0 is the router,
    replicas are nodes [1..n]). Translated onto
    {!Gp_distsim.Engine.failure} for the run. *)
type failure =
  | Drop of float  (** each protocol message dropped with this prob *)
  | Crash_replica of { replica : int; at : float }
      (** crash-stop replica (1-based node id) at simulated time [at] *)
  | Crash_leader of { at : float }
      (** crash the initial election winner — the highest replica id *)
  | Partition of { groups : int list list; from_ : float; until : float }
      (** network islands over node ids (router included) active while
          [from_ <= now < until] *)

type config = {
  replicas : int;
  vnodes : int;  (** ring points per replica *)
  affinity : bool;
      (** shard reads by content key (true) or round-robin (false) *)
  timing : Gp_distsim.Engine.timing;
  seed : int;
  failures : failure list;
  tuning : Node.tuning;
  arrivals : float array option;
      (** open-loop arrival process: absolute simulated arrival time per
          workload index, strictly increasing (build one with
          [Gp_scenario.Arrivals]). [None] = the classic fixed
          [tuning.arrival_interval] cadence, scheduled exactly as before
          so pre-scenario runs stay bit-identical. *)
  elastic : Node.elastic_event list;
      (** mid-run membership schedule. Joins may name node slots above
          [replicas]; the topology is sized for the highest slot named.
          Joins require [affinity] (round-robin has no ring to join). *)
  server_config : Gp_service.Server.config;
      (** per-replica server template; [now] is replaced by each node's
          simulated clock *)
  max_time : float;  (** simulation safety horizon *)
  max_events : int;
  trace : bool;
      (** collect distributed traces and per-node fleet metrics: one
          span ring and metric registry per node, causal contexts on
          every wire message. Changes nothing simulated — no message,
          RNG draw, or event differs from an untraced run (one flag
          check per instrumentation site). *)
}

val default_config : config
(** 3 replicas, 64 vnodes, key affinity, synchronous timing, seed 42,
    no failures, {!Node.default_tuning}; servers cache (256 entries)
    with no timeout, no flight recorder, and a zero clock template. *)

type result = {
  r_config : config;
  r_requests : Gp_service.Request.t array;
  r_records : Node.record option array;
      (** per workload index; [None] = never completed *)
  r_completed : int;
  r_metrics : Gp_distsim.Engine.metrics;
  r_elections : int;  (** election rounds, counting the initial one *)
  r_failovers : (float * float) list;
      (** (leader presumed dead, new coordinator accepted), oldest
          first — the failover-latency series *)
  r_leaders : (float * int) list;
      (** coordinator acceptances at the router, oldest first *)
  r_cache_hits : int;  (** summed over every replica's memo caches *)
  r_cache_misses : int;
  r_shed_admission : int;
      (** arrivals refused at the router's full bounded queue *)
  r_shed_overload : int;
      (** requests refused by a backlogged replica's typed
          {!Proto.Shed} reply *)
  r_promotions : int;  (** hot keys promoted to replicated reads *)
  r_promoted_keys : string list;  (** promoted keys, oldest first *)
  r_joined : int;  (** replicas that joined the ring mid-run *)
  r_left : int;  (** replicas that left the ring mid-run *)
  r_handoffs : int;
      (** completed writes replayed to joiners as state handoff *)
  r_peak_inflight : int;
      (** high-water mark of the router's pending table — the observed
          depth of the bounded queue *)
  r_moved_keys : int;
      (** distinct workload keys whose shard owner changed across the
          elastic schedule (precomputed against shadow rings) *)
  r_moved_bound : int;
      (** the minimal-movement allowance: keys on the joiner's new arcs
          or the leaver's old ones. Consistent hashing guarantees
          [r_moved_keys <= r_moved_bound] (in fact equality). *)
  r_traces : (int * Gp_telemetry.Trace.span list) list;
      (** per-node completed spans, node order ([[]] unless
          [config.trace]): span ids are cluster-global, times are
          simulated units ×1e3, every span carries its trace id in the
          ["trace"] attribute — feed them to
          [Gp_telemetry.Journey.assemble] / [Gp_tracing.Trace_set] *)
  r_node_metrics : (int * Gp_telemetry.Metrics.t) list;
      (** per-node metric registries ([[]] unless [config.trace]),
          merged cluster-wide by [Gp_tracing.Fleet] *)
}

val run :
  ?config:config ->
  declare_standard:(Gp_concepts.Registry.t -> unit) ->
  Gp_service.Request.t array ->
  result
(** Simulate the full workload: requests arrive at the router on a
    fixed cadence, shard/replicate/retry per the protocol, until every
    request completes (or the safety horizon cuts the run short —
    check [r_completed]). Shed verdicts count as completions: overload
    control rejects, it never hangs. Raises [Invalid_argument] if
    [config.replicas < 1], if [config.arrivals] is shorter than the
    workload, or on a malformed elastic schedule (replica < 1,
    non-positive time, or a join without key affinity). *)

(** {2 Derived series} *)

val messages_per_request : result -> float
(** Protocol messages sent per completed request (timers excluded). *)

val hit_ratio : result -> float
(** Cluster-wide cache hit ratio, over all replicas. *)

val mean_latency : result -> float
(** Mean simulated arrival-to-completion time over completed requests. *)

val max_latency : result -> float

val retried : result -> int
(** Completed requests that needed more than one dispatch. *)

val shed_total : result -> int
(** Admission plus overload sheds. *)

val shed_ratio : result -> float
(** Shed verdicts as a fraction of completed requests. *)

val latency_percentile : result -> float -> float
(** Nearest-rank latency percentile over served (non-shed) records;
    the quantile is in [0,1], e.g. [latency_percentile r 0.99]. *)

val pp_summary : Format.formatter -> result -> unit
(** Human-readable run summary: completion, traffic, elections,
    failovers, latency, caches. Deterministic per (config, workload). *)

(** {2 Consistency audit} *)

type divergence = {
  dv_rid : int;
  dv_cluster_fp : string;
  dv_single_fp : string;
}

type audit = {
  au_total : int;  (** workload size *)
  au_compared : int;  (** completed requests whose digests were diffed *)
  au_missing : int;  (** requests the cluster never completed *)
  au_shed : int;
      (** typed shed verdicts, excluded from comparison by construction
          (they carry no fingerprint). Always
          [au_compared + au_missing + au_shed = au_total]. *)
  au_divergences : divergence list;  (** digest mismatches, by rid *)
}

val audit_ok : audit -> bool
(** Nothing missing and nothing divergent. *)

val audit :
  declare_standard:(Gp_concepts.Registry.t -> unit) -> result -> audit
(** Replay the workload, in arrival order, on one bare
    {!Gp_service.Server} built from the same server template, and diff
    each completed record's fingerprint against the single-node
    response. *)

val pp_audit : Format.formatter -> audit -> unit

(** {2 Dump / offline audit} *)

val dump : result -> string
(** JSONL document: a header line (cluster shape, seed, the server
    config line) then one line per completed record in rid order, each
    embedding the request wire object and the reply fingerprint.
    Deterministic — two same-seed runs dump identical bytes. *)

val audit_dump :
  declare_standard:(Gp_concepts.Registry.t -> unit) ->
  string ->
  (audit, string) Stdlib.result
(** Audit a {!dump} document offline: rebuild the server config from
    the header, re-serve each embedded request single-node, diff the
    fingerprints. Shed records are skipped (and counted in [au_shed]).
    [Error] describes a malformed document; malformed scenario fields
    (a non-int header [shed]/[promoted]/[joined]/[left], a non-bool
    record [shed]) are rejected with the wire's positioned convention,
    e.g. ["at 42: bad field \"shed\" (want a bool)"]. *)
