(** The per-node state machines of the cluster: one router (node 0)
    fronting [n] replica servers (nodes 1..n), expressed as a
    {!Gp_distsim.Engine.algorithm} so every run is a deterministic,
    seeded simulation.

    The router shards reads by content key over a {!Hash_ring}, retries
    them on ring successors with capped exponential backoff, serializes
    registry-mutating requests through an elected leader (FloodMax over
    replica ids, re-run when heartbeats stop), and replays the whole
    workload to completion. Replicas run real {!Gp_service.Server}
    instances on the simulated clock; replies carry
    {!Gp_service.Request.response_fingerprint}, which is what the
    consistency audit compares. *)

(** Protocol timing knobs, all in simulated time units. *)
type tuning = {
  arrival_interval : float;  (** spacing between workload arrivals *)
  read_timeout : float;  (** base retry timeout for a dispatched request *)
  backoff_cap : float;  (** ceiling for the exponential retry delay *)
  settle : float;  (** election round length before the winner speaks *)
  hb_interval : float;  (** leader heartbeat period *)
  hb_timeout : float;
      (** heartbeat silence after which the router presumes the leader
          dead and starts a re-election *)
}

val default_tuning : tuning
(** Arrivals every 1.0, retry base 8.0 capped at 64.0, elections settle
    in 3.0, heartbeats every 5.0, presumed dead after 16.0 — sized for
    the synchronous model's 1.0-per-hop delay with generous slack for
    the asynchronous ones. *)

(** What the router records when a request completes: who served it,
    the response fingerprint the audit will check, and the simulated
    arrival/completion times the latency series are built from. *)
type record = {
  rc_rid : int;  (** workload index *)
  rc_kind : Gp_service.Request.kind;
  rc_write : bool;  (** took the leader/replication path *)
  rc_replica : int;  (** node that served the accepted reply *)
  rc_fp : string;  (** {!Gp_service.Request.response_fingerprint} *)
  rc_ok : bool;
  rc_cached : bool;
  rc_attempts : int;  (** dispatches until a reply was accepted *)
  rc_arrive : float;  (** simulated arrival time *)
  rc_done : float;  (** simulated completion time *)
}

(** Shared read-only input plus the mutable collection points the
    simulation writes into — the engine's own state is opaque after
    {!Gp_distsim.Engine.run} returns, so the harness reads results from
    here. Build one per run ({!Cluster.run} does). *)
type world = {
  reqs : Gp_service.Request.t array;
  ring : Hash_ring.t;
  n_replicas : int;
  affinity : bool;
      (** true: shard reads by content key over [ring]; false:
          round-robin them (the s5 contrast arm) *)
  tuning : tuning;
  server_config : Gp_service.Server.config;
      (** template for each replica's server; its [now] field is
          replaced by the node's simulated clock *)
  declare_standard : Gp_concepts.Registry.t -> unit;
  servers : Gp_service.Server.t option array;
      (** filled at node init, indexed by node id (0 stays [None]) *)
  records : record option array;  (** indexed by rid, filled on completion *)
  mutable completed : int;
  mutable elections : int;  (** election rounds, counting the initial one *)
  mutable failovers : (float * float) list;
      (** (presumed-dead, new-coordinator-accepted) pairs, newest first *)
  mutable leader_log : (float * int) list;
      (** coordinator acceptances at the router, newest first *)
  trace_on : bool;
      (** distributed tracing master switch — every instrumentation
          site is guarded by exactly this one flag check, and tracing
          changes no message, RNG draw or event order *)
  node_traces : Gp_telemetry.Trace.t array;
      (** per-node span rings, indexed by node id ([[||]] when
          [trace_on] is false). Span ids are cluster-global, times are
          simulated units stored ×1e3, and every span carries its trace
          id in the ["trace"] attribute. *)
  node_metrics : Gp_telemetry.Metrics.t array;
      (** per-node metric registries (request latency/failover
          histograms, per-shard and per-key dispatch counters, serve /
          replicate / retry / election counters), merged cluster-wide
          by [Gp_tracing.Fleet] *)
  mutable next_span : int;  (** cluster-global span-id counter *)
  mutable next_trace : int;
      (** aux trace-id counter: requests use their [rid] as trace id,
          elections and liveness probes draw fresh ids from here
          (initialised above the workload size) *)
  el0_trace : int;  (** the initial election's pre-allocated trace id *)
  el0_span : int;  (** ... and its root span id *)
}

type state
(** Opaque per-node machine state (router or replica). *)

val algorithm :
  world -> (state, Proto.msg) Gp_distsim.Engine.algorithm
(** The cluster as a distsim algorithm over a complete topology of
    [1 + world.n_replicas] nodes: node 0 runs the router machine, the
    rest run replica machines. All observable output lands in
    [world]. *)
