(** The per-node state machines of the cluster: one router (node 0)
    fronting [n] replica servers (nodes 1..n), expressed as a
    {!Gp_distsim.Engine.algorithm} so every run is a deterministic,
    seeded simulation.

    The router shards reads by content key over a {!Hash_ring}, retries
    them on ring successors with capped exponential backoff, serializes
    registry-mutating requests through an elected leader (FloodMax over
    replica ids, re-run when heartbeats stop), and replays the whole
    workload to completion. Replicas run real {!Gp_service.Server}
    instances on the simulated clock; replies carry
    {!Gp_service.Request.response_fingerprint}, which is what the
    consistency audit compares. *)

(** Protocol timing knobs, all in simulated time units. *)
type tuning = {
  arrival_interval : float;  (** spacing between workload arrivals *)
  read_timeout : float;  (** base retry timeout for a dispatched request *)
  backoff_cap : float;  (** ceiling for the exponential retry delay *)
  settle : float;  (** election round length before the winner speaks *)
  hb_interval : float;  (** leader heartbeat period *)
  hb_timeout : float;
      (** heartbeat silence after which the router presumes the leader
          dead and starts a re-election *)
  queue_bound : int;
      (** router admission bound: arrivals past this many in-flight
          requests are shed at the door with a typed zero-latency
          verdict. 0 (the default) = unbounded, the pre-scenario
          behavior. *)
  service_time : float;
      (** simulated service time of a fresh, uncached serve. Replicas
          serialize: concurrent serves queue behind [busy_until]. 0 (the
          default) keeps serves instantaneous — bit-identical to the
          pre-scenario protocol. *)
  service_time_hit : float;  (** ... of a fresh serve answered by cache *)
  shed_backlog : float;
      (** replica overload bound: a replica whose serialized backlog
          exceeds this refuses fresh requests with a typed {!Proto.Shed}
          wire reply instead of queueing them. 0 = never shed. *)
  hot_capacity : int;
      (** slots in the router's space-saving hot-key table (0 = detector
          off) *)
  hot_promote_after : int;
      (** dispatch count at which a tracked key is promoted to
          replicated reads (0 = never promote) *)
  hot_spread : int;
      (** ring successors a promoted key's reads rotate over *)
}

val default_tuning : tuning
(** Arrivals every 1.0, retry base 8.0 capped at 64.0, elections settle
    in 3.0, heartbeats every 5.0, presumed dead after 16.0 — sized for
    the synchronous model's 1.0-per-hop delay with generous slack for
    the asynchronous ones. Overload control and hot-key promotion are
    off (all zeros), so a default-tuned run reproduces the pre-scenario
    event stream bit-for-bit. *)

(** What the router records when a request completes: who served it,
    the response fingerprint the audit will check, and the simulated
    arrival/completion times the latency series are built from. *)
type record = {
  rc_rid : int;  (** workload index *)
  rc_kind : Gp_service.Request.kind;
  rc_write : bool;  (** took the leader/replication path *)
  rc_replica : int;  (** node that served the accepted reply *)
  rc_fp : string;  (** {!Gp_service.Request.response_fingerprint} *)
  rc_ok : bool;
  rc_cached : bool;
  rc_attempts : int;  (** dispatches until a reply was accepted *)
  rc_shed : bool;
      (** the typed shed verdict: admitted-then-refused (overload) or
          refused at the router's full queue (admission). Shed records
          carry an empty [rc_fp] and are excluded from the consistency
          audit by construction. *)
  rc_arrive : float;  (** simulated arrival time *)
  rc_done : float;  (** simulated completion time *)
}

(** A scheduled mid-run membership change, applied by the router. *)
type elastic_event = {
  el_at : float;  (** simulated time *)
  el_join : bool;  (** true = join, false = leave *)
  el_replica : int;  (** node slot, 1-based *)
}

(** Shared read-only input plus the mutable collection points the
    simulation writes into — the engine's own state is opaque after
    {!Gp_distsim.Engine.run} returns, so the harness reads results from
    here. Build one per run ({!Cluster.run} does). *)
type world = {
  reqs : Gp_service.Request.t array;
  mutable ring : Hash_ring.t;
      (** the routing ring; elastic membership events swap it mid-run *)
  n_replicas : int;
      (** highest node slot — initially-active replicas plus any slots
          reserved for late joiners *)
  active : bool array;
      (** per-slot ring membership (length [n_replicas + 1], index 0
          unused); flipped by elastic events *)
  affinity : bool;
      (** true: shard reads by content key over [ring]; false:
          round-robin them (the s5 contrast arm) *)
  tuning : tuning;
  arrivals : float array option;
      (** open-loop arrival clock: absolute simulated arrival time per
          rid, strictly increasing. [None] = the fixed
          [arrival_interval] cadence, pre-scheduled as before. *)
  elastic : elastic_event list;  (** membership schedule, by time *)
  server_config : Gp_service.Server.config;
      (** template for each replica's server; its [now] field is
          replaced by the node's simulated clock *)
  declare_standard : Gp_concepts.Registry.t -> unit;
  servers : Gp_service.Server.t option array;
      (** filled at node init, indexed by node id (0 stays [None]) *)
  records : record option array;  (** indexed by rid, filled on completion *)
  mutable completed : int;
  mutable elections : int;  (** election rounds, counting the initial one *)
  mutable failovers : (float * float) list;
      (** (presumed-dead, new-coordinator-accepted) pairs, newest first *)
  mutable leader_log : (float * int) list;
      (** coordinator acceptances at the router, newest first *)
  mutable shed_admission : int;
      (** arrivals refused at the router's full queue *)
  mutable shed_overload : int;
      (** requests refused by a backlogged replica's {!Proto.Shed} *)
  mutable promotions : int;  (** hot keys promoted to replicated reads *)
  mutable promoted_keys : string list;  (** promoted keys, newest first *)
  mutable joined : int;  (** replicas that joined mid-run *)
  mutable left : int;  (** replicas that left mid-run *)
  mutable handoffs : int;
      (** completed writes replayed to joiners as {!Proto.Replicate} *)
  mutable peak_inflight : int;
      (** high-water mark of the router's pending table — the bounded
          queue's observed depth *)
  trace_on : bool;
      (** distributed tracing master switch — every instrumentation
          site is guarded by exactly this one flag check, and tracing
          changes no message, RNG draw or event order *)
  node_traces : Gp_telemetry.Trace.t array;
      (** per-node span rings, indexed by node id ([[||]] when
          [trace_on] is false). Span ids are cluster-global, times are
          simulated units stored ×1e3, and every span carries its trace
          id in the ["trace"] attribute. *)
  node_metrics : Gp_telemetry.Metrics.t array;
      (** per-node metric registries (request latency/failover
          histograms, per-shard and per-key dispatch counters, serve /
          replicate / retry / election counters), merged cluster-wide
          by [Gp_tracing.Fleet] *)
  mutable next_span : int;  (** cluster-global span-id counter *)
  mutable next_trace : int;
      (** aux trace-id counter: requests use their [rid] as trace id,
          elections and liveness probes draw fresh ids from here
          (initialised above the workload size) *)
  el0_trace : int;  (** the initial election's pre-allocated trace id *)
  el0_span : int;  (** ... and its root span id *)
}

type state
(** Opaque per-node machine state (router or replica). *)

val algorithm :
  world -> (state, Proto.msg) Gp_distsim.Engine.algorithm
(** The cluster as a distsim algorithm over a complete topology of
    [1 + world.n_replicas] nodes: node 0 runs the router machine, the
    rest run replica machines. All observable output lands in
    [world]. *)
