(* The router and replica state machines. Everything observable is
   written into the shared [world] record: the engine's node states are
   unreachable once the run finishes, and the harness (Cluster.run)
   reads completions, elections and failovers from the world instead. *)

module Engine = Gp_distsim.Engine
module Server = Gp_service.Server
module Request = Gp_service.Request
module Tel = Gp_telemetry.Tel

type tuning = {
  arrival_interval : float;
  read_timeout : float;
  backoff_cap : float;
  settle : float;
  hb_interval : float;
  hb_timeout : float;
}

let default_tuning =
  { arrival_interval = 1.0; read_timeout = 8.0; backoff_cap = 64.0;
    settle = 3.0; hb_interval = 5.0; hb_timeout = 16.0 }

type record = {
  rc_rid : int;
  rc_kind : Request.kind;
  rc_write : bool;
  rc_replica : int;
  rc_fp : string;
  rc_ok : bool;
  rc_cached : bool;
  rc_attempts : int;
  rc_arrive : float;
  rc_done : float;
}

type world = {
  reqs : Request.t array;
  ring : Hash_ring.t;
  n_replicas : int;
  affinity : bool;
  tuning : tuning;
  server_config : Server.config;
  declare_standard : Gp_concepts.Registry.t -> unit;
  servers : Server.t option array;
  records : record option array;
  mutable completed : int;
  mutable elections : int;
  mutable failovers : (float * float) list;
  mutable leader_log : (float * int) list;
}

(* -------------------------------------------------------------- *)
(* Node states                                                     *)
(* -------------------------------------------------------------- *)

type pending = {
  p_rid : int;
  p_write : bool;
  p_arrive : float;
  mutable p_attempt : int; (* dispatches made so far, minus one *)
}

type router = {
  pending : (int, pending) Hashtbl.t;
  wait_leader : int Queue.t; (* writes parked until a leader is known *)
  mutable rt_leader : int option;
  mutable last_hb : float;
  mutable detect_at : float option; (* presumed-death time, for failover latency *)
  mutable last_election : float; (* last Start_election broadcast *)
}

type replica = {
  server : Server.t;
  served : (int, string * bool * bool) Hashtbl.t; (* rid -> fp, ok, cached *)
  mutable best : int; (* highest uid seen this election round *)
  mutable rep_leader : int option;
  mutable electing : bool;
}

type state = R_router of router | R_replica of replica

let backoff w attempt =
  (* 2.**large overflows to infinity, which min caps — intentional *)
  Float.min (w.tuning.read_timeout *. (2. ** float_of_int attempt))
    w.tuning.backoff_cap

let each_replica w ~except f =
  for j = 1 to w.n_replicas do
    if j <> except then f j
  done

(* -------------------------------------------------------------- *)
(* Replica machine                                                 *)
(* -------------------------------------------------------------- *)

(* Serve [rid], memoized per replica: a retried or re-replicated request
   reuses the first response, so duplicates cannot fork the fingerprint
   and the work accounting stays honest. Returns [(result, fresh)]. *)
let serve (ctx : Proto.msg Engine.ctx) w rep rid =
  match Hashtbl.find_opt rep.served rid with
  | Some r -> (r, false)
  | None ->
    let rsp =
      Tel.with_span ~name:"cluster.serve"
        ~attrs:(fun () ->
          [ ("node", string_of_int ctx.self); ("rid", string_of_int rid) ])
        (fun () -> Server.handle ~id:rid rep.server w.reqs.(rid))
    in
    ctx.charge (max 1 rsp.Request.rsp_steps);
    if Tel.is_enabled () then
      Tel.count
        ~labels:[ ("node", string_of_int ctx.self) ]
        "gp_cluster_serves_total" 1;
    let r =
      (Request.response_fingerprint rsp, Request.ok rsp, rsp.Request.rsp_cached)
    in
    Hashtbl.replace rep.served rid r;
    (r, true)

let start_round (ctx : Proto.msg Engine.ctx) w rep =
  rep.best <- ctx.self;
  rep.electing <- true;
  each_replica w ~except:ctx.self (fun j -> ctx.send j (Proto.Elect { uid = ctx.self }));
  ctx.timer ~delay:w.tuning.settle Proto.Election_settle

let replica_msg (ctx : Proto.msg Engine.ctx) w rep msg =
  match msg with
  | Proto.Elect { uid } -> if uid > rep.best then rep.best <- uid
  | Proto.Election_settle ->
    if rep.electing then begin
      rep.electing <- false;
      if rep.best = ctx.self then begin
        rep.rep_leader <- Some ctx.self;
        ctx.send 0 (Proto.Coord { uid = ctx.self });
        each_replica w ~except:ctx.self (fun j ->
            ctx.send j (Proto.Coord { uid = ctx.self }))
      end
    end
  | Proto.Coord { uid } ->
    (* accept-max within a round; a stale higher uid from a dead leader
       is corrected by the next heartbeat timeout *)
    (match rep.rep_leader with
     | None -> rep.rep_leader <- Some uid
     | Some l -> if uid >= l then rep.rep_leader <- Some uid)
  | Proto.Start_election -> start_round ctx w rep
  | Proto.Do_request { rid; attempt = _ } ->
    let (fp, ok, cached), fresh = serve ctx w rep rid in
    ctx.send 0 (Proto.Reply { rid; replica = ctx.self; fp; ok; cached });
    (* first service of a write fans out to the followers; the served
       table makes re-deliveries idempotent on both ends *)
    if fresh && Proto.is_write w.reqs.(rid) then
      each_replica w ~except:ctx.self (fun j ->
          ctx.send j (Proto.Replicate { rid }))
  | Proto.Replicate { rid } -> ignore (serve ctx w rep rid)
  | Proto.Ping ->
    if rep.rep_leader = Some ctx.self then
      ctx.send 0 (Proto.Heartbeat { uid = ctx.self })
  | Proto.Shutdown ->
    ctx.decide (string_of_int (Hashtbl.length rep.served));
    ctx.halt ()
  | Proto.Arrive _ | Proto.Reply _ | Proto.Retry_check _ | Proto.Hb_check
  | Proto.Heartbeat _ ->
    ()

(* -------------------------------------------------------------- *)
(* Router machine                                                  *)
(* -------------------------------------------------------------- *)

let read_target w rid attempt =
  if w.affinity then begin
    let succ = Hash_ring.successors w.ring (Request.key w.reqs.(rid)) in
    List.nth succ (attempt mod List.length succ)
  end
  else 1 + ((rid + attempt) mod w.n_replicas)

(* Dispatch the pending request's next attempt. Reads go to the shard
   owner, then walk its ring successors on retry; writes go to the
   leader, or park in [wait_leader] until a coordinator is known (the
   Coord acceptance flushes the queue). Every dispatch arms its own
   retry timer. *)
let dispatch (ctx : Proto.msg Engine.ctx) w rt p =
  let rid = p.p_rid and attempt = p.p_attempt in
  let fire target =
    ctx.send target (Proto.Do_request { rid; attempt });
    ctx.timer ~delay:(backoff w attempt) (Proto.Retry_check { rid; attempt })
  in
  if p.p_write then
    match rt.rt_leader with
    | Some l -> fire l
    | None -> Queue.push rid rt.wait_leader
  else fire (read_target w rid attempt)

let start_election (ctx : Proto.msg Engine.ctx) w rt =
  w.elections <- w.elections + 1;
  rt.last_election <- ctx.now ();
  if Tel.is_enabled () then Tel.count "gp_cluster_elections_total" 1;
  each_replica w ~except:0 (fun j -> ctx.send j Proto.Start_election)

let router_msg (ctx : Proto.msg Engine.ctx) w rt msg =
  match msg with
  | Proto.Arrive rid ->
    let p =
      { p_rid = rid; p_write = Proto.is_write w.reqs.(rid);
        p_arrive = ctx.now (); p_attempt = 0 }
    in
    Hashtbl.replace rt.pending rid p;
    dispatch ctx w rt p
  | Proto.Retry_check { rid; attempt } ->
    (match Hashtbl.find_opt rt.pending rid with
     | Some p when p.p_attempt = attempt ->
       p.p_attempt <- attempt + 1;
       if Tel.is_enabled () then Tel.count "gp_cluster_retries_total" 1;
       dispatch ctx w rt p
     | Some _ | None -> ())
  | Proto.Reply { rid; replica; fp; ok; cached } ->
    (match Hashtbl.find_opt rt.pending rid with
     | None -> () (* duplicate reply from a retried request *)
     | Some p ->
       Hashtbl.remove rt.pending rid;
       let done_ = ctx.now () in
       w.records.(rid) <-
         Some
           { rc_rid = rid; rc_kind = Request.kind w.reqs.(rid);
             rc_write = p.p_write; rc_replica = replica; rc_fp = fp;
             rc_ok = ok; rc_cached = cached; rc_attempts = p.p_attempt + 1;
             rc_arrive = p.p_arrive; rc_done = done_ };
       w.completed <- w.completed + 1;
       if Tel.is_enabled () then
         Tel.observe "gp_cluster_request_time" (done_ -. p.p_arrive);
       if w.completed = Array.length w.reqs then begin
         each_replica w ~except:0 (fun j -> ctx.send j Proto.Shutdown);
         ctx.decide (string_of_int w.completed);
         ctx.halt ()
       end)
  | Proto.Coord { uid } ->
    let accept =
      match rt.rt_leader with None -> true | Some l -> uid >= l
    in
    if accept then begin
      rt.rt_leader <- Some uid;
      rt.last_hb <- ctx.now ();
      w.leader_log <- (ctx.now (), uid) :: w.leader_log;
      (match rt.detect_at with
       | Some t0 ->
         w.failovers <- (t0, ctx.now ()) :: w.failovers;
         if Tel.is_enabled () then
           Tel.observe "gp_cluster_failover_time" (ctx.now () -. t0);
         rt.detect_at <- None
       | None -> ());
      (* a leader exists again: release the parked writes *)
      while not (Queue.is_empty rt.wait_leader) do
        let rid = Queue.pop rt.wait_leader in
        match Hashtbl.find_opt rt.pending rid with
        | Some p -> dispatch ctx w rt p
        | None -> ()
      done
    end
  | Proto.Heartbeat { uid } ->
    if rt.rt_leader = Some uid then rt.last_hb <- ctx.now ()
  | Proto.Hb_check ->
    ctx.timer ~delay:w.tuning.hb_interval Proto.Hb_check;
    (match rt.rt_leader with
     | Some _ when ctx.now () -. rt.last_hb > w.tuning.hb_timeout ->
       rt.rt_leader <- None;
       if rt.detect_at = None then rt.detect_at <- Some (ctx.now ());
       start_election ctx w rt
     | Some l -> ctx.send l Proto.Ping
     | None
       when Hashtbl.length rt.pending > 0
            && ctx.now () -. rt.last_election > w.tuning.hb_timeout ->
       (* an election round went fully missing (dropped Elects/Coords);
          kick off another rather than stalling the parked writes *)
       start_election ctx w rt
     | None -> ())
  | Proto.Do_request _ | Proto.Replicate _ | Proto.Elect _
  | Proto.Election_settle | Proto.Start_election | Proto.Ping
  | Proto.Shutdown ->
    ()

(* -------------------------------------------------------------- *)
(* Assembly                                                        *)
(* -------------------------------------------------------------- *)

let initial w (ctx : Proto.msg Engine.ctx) =
  if ctx.self = 0 then begin
    Array.iteri
      (fun rid _ ->
        ctx.timer
          ~delay:(float_of_int (rid + 1) *. w.tuning.arrival_interval)
          (Proto.Arrive rid))
      w.reqs;
    ctx.timer ~delay:w.tuning.hb_timeout Proto.Hb_check;
    w.elections <- w.elections + 1; (* the initial round, started below *)
    R_router
      { pending = Hashtbl.create 64; wait_leader = Queue.create ();
        rt_leader = None; last_hb = 0.0; detect_at = None;
        last_election = 0.0 }
  end
  else begin
    let config = { w.server_config with Server.now = ctx.now } in
    let server =
      Server.create ~config ~declare_standard:w.declare_standard ()
    in
    w.servers.(ctx.self) <- Some server;
    let rep =
      { server; served = Hashtbl.create 64; best = ctx.self;
        rep_leader = None; electing = false }
    in
    start_round ctx w rep;
    R_replica rep
  end

let algorithm w =
  {
    Engine.algo_name = "gp-cluster";
    initial = initial w;
    on_message =
      (fun ctx st ~src:_ msg ->
        (match st with
         | R_router rt -> router_msg ctx w rt msg
         | R_replica rep -> replica_msg ctx w rep msg);
        st);
  }
