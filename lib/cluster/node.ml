(* The router and replica state machines. Everything observable is
   written into the shared [world] record: the engine's node states are
   unreachable once the run finishes, and the harness (Cluster.run)
   reads completions, elections and failovers from the world instead.

   Distributed tracing rides the same world: when [trace_on] each node
   owns a span ring and a metrics registry, spans are stamped with a
   cluster-global id and a trace id, and the (trace, parent span)
   context crosses the wire inside Proto messages — so the assembler
   can rebuild each request's causal tree across nodes afterwards.
   Tracing is ONE flag check per site ([w.trace_on]) and changes no
   message timing, RNG draw, or event: the simulated transcript with
   tracing on is identical to the one with it off. *)

module Engine = Gp_distsim.Engine
module Server = Gp_service.Server
module Request = Gp_service.Request
module Tel = Gp_telemetry.Tel
module Context = Gp_telemetry.Context
module Trace = Gp_telemetry.Trace
module Metrics = Gp_telemetry.Metrics

type tuning = {
  arrival_interval : float;
  read_timeout : float;
  backoff_cap : float;
  settle : float;
  hb_interval : float;
  hb_timeout : float;
  (* overload control: all zero by default, which disables them and
     keeps the pre-scenario event stream bit-identical *)
  queue_bound : int;
  service_time : float;
  service_time_hit : float;
  shed_backlog : float;
  (* hot-key mitigation: space-saving detector at the router *)
  hot_capacity : int;
  hot_promote_after : int;
  hot_spread : int;
}

let default_tuning =
  { arrival_interval = 1.0; read_timeout = 8.0; backoff_cap = 64.0;
    settle = 3.0; hb_interval = 5.0; hb_timeout = 16.0;
    queue_bound = 0; service_time = 0.0; service_time_hit = 0.0;
    shed_backlog = 0.0; hot_capacity = 0; hot_promote_after = 0;
    hot_spread = 3 }

type record = {
  rc_rid : int;
  rc_kind : Request.kind;
  rc_write : bool;
  rc_replica : int;
  rc_fp : string;
  rc_ok : bool;
  rc_cached : bool;
  rc_attempts : int;
  rc_shed : bool;
  rc_arrive : float;
  rc_done : float;
}

type elastic_event = { el_at : float; el_join : bool; el_replica : int }

type world = {
  reqs : Request.t array;
  mutable ring : Hash_ring.t; (* mutated by elastic membership events *)
  n_replicas : int; (* highest node slot: initial replicas + late joiners *)
  active : bool array; (* per-slot ring membership; index 0 unused *)
  affinity : bool;
  tuning : tuning;
  arrivals : float array option; (* open-loop arrival clock per rid *)
  elastic : elastic_event list; (* membership schedule, by time *)
  server_config : Server.config;
  declare_standard : Gp_concepts.Registry.t -> unit;
  servers : Server.t option array;
  records : record option array;
  mutable completed : int;
  mutable elections : int;
  mutable failovers : (float * float) list;
  mutable leader_log : (float * int) list;
  mutable shed_admission : int; (* rejected at the router's full queue *)
  mutable shed_overload : int; (* typed Shed replies from backlogged replicas *)
  mutable promotions : int;
  mutable promoted_keys : string list; (* newest first *)
  mutable joined : int;
  mutable left : int;
  mutable handoffs : int; (* completed writes replayed to joiners *)
  mutable peak_inflight : int;
  (* distributed tracing: per-node rings/registries, a cluster-global
     span-id counter and an aux trace-id counter (requests use their rid
     as trace id; elections and probes draw fresh ids above them). All
     fields are dead weight unless [trace_on] — one flag check per
     site. *)
  trace_on : bool;
  node_traces : Trace.t array; (* length n_replicas+1, or [||] when off *)
  node_metrics : Metrics.t array; (* same *)
  mutable next_span : int;
  mutable next_trace : int;
  el0_trace : int; (* the initial election's pre-allocated trace id *)
  el0_span : int; (* ... and its root span id *)
}

let fresh_span w =
  w.next_span <- w.next_span + 1;
  w.next_span

let fresh_trace w =
  let t = w.next_trace in
  w.next_trace <- t + 1;
  t

(* Simulated time [t] is stored as [t * 1e3] "nanoseconds" in the rings:
   one simulated unit reads as one microsecond, so Chrome's microsecond
   timestamps equal simulated units exactly and pp_dur stays legible.
   Every span carries its trace id as the "trace" attribute — that is
   the key the journey assembler groups by. *)
let emit w ~node ~trace ~id ~parent ~name ~start ~stop attrs =
  ignore
    (Trace.emit w.node_traces.(node) ~id
       ?parent:(if parent = 0 then None else Some parent)
       ~name ~start_ns:(start *. 1e3)
       ~dur_ns:((stop -. start) *. 1e3)
       ~attrs:(("trace", string_of_int trace) :: attrs)
       ())

(* -------------------------------------------------------------- *)
(* Node states                                                     *)
(* -------------------------------------------------------------- *)

type pending = {
  p_rid : int;
  p_write : bool;
  p_arrive : float;
  mutable p_attempt : int; (* dispatches made so far, minus one *)
  (* tracing bookkeeping (untouched when trace_on is false): the open
     request root span, the open attempt span with its start/target,
     and the start of an open leaderless-parking window (nan = none). *)
  mutable p_req_span : int;
  mutable p_att_span : int;
  mutable p_att_start : float;
  mutable p_att_target : int;
  mutable p_park_since : float;
}

type router = {
  pending : (int, pending) Hashtbl.t;
  wait_leader : int Queue.t; (* writes parked until a leader is known *)
  (* hot-key detection: a space-saving (Misra-Gries family) top-k table
     over read dispatch keys. Keys whose counter crosses the promotion
     threshold get replicated reads: their dispatches rotate over the
     ring successors instead of hammering the shard owner. *)
  hk_slots : (string, int) Hashtbl.t; (* key -> slot index *)
  hk_keys : string array;
  hk_counts : int array;
  mutable hk_used : int;
  promoted : (string, int ref) Hashtbl.t; (* key -> rotation counter *)
  mutable rt_leader : int option;
  mutable last_hb : float;
  mutable detect_at : float option; (* presumed-death time, for failover latency *)
  mutable last_election : float; (* last Start_election broadcast *)
  (* tracing: the open election root span and the outstanding liveness
     probe (span id 0 = none open). *)
  mutable rt_el_span : int;
  mutable rt_el_trace : int;
  mutable rt_el_start : float;
  mutable rt_probe_span : int;
  mutable rt_probe_trace : int;
  mutable rt_probe_start : float;
}

type replica = {
  server : Server.t;
  served : (int, string * bool * bool) Hashtbl.t; (* rid -> fp, ok, cached *)
  mutable busy_until : float; (* end of the serialized service backlog *)
  mutable best : int; (* highest uid seen this election round *)
  mutable rep_leader : int option;
  mutable electing : bool;
  (* tracing: the current FloodMax round's span, parented under the
     router's election root carried in by Start_election. *)
  mutable rep_round_span : int;
  mutable rep_round_trace : int;
  mutable rep_round_parent : int;
  mutable rep_round_start : float;
}

type state = R_router of router | R_replica of replica

let backoff w attempt =
  (* 2.**large overflows to infinity, which min caps — intentional *)
  Float.min (w.tuning.read_timeout *. (2. ** float_of_int attempt))
    w.tuning.backoff_cap

let each_replica w ~except f =
  for j = 1 to w.n_replicas do
    if j <> except && w.active.(j) then f j
  done

(* -------------------------------------------------------------- *)
(* Replica machine                                                 *)
(* -------------------------------------------------------------- *)

(* Serve [rid], memoized per replica: a retried or re-replicated request
   reuses the first response, so duplicates cannot fork the fingerprint
   and the work accounting stays honest. Returns [(result, fresh)].
   [tc] is the inbound wire context, handed to the server so its own
   root span can name the cluster trace it belongs to. *)
let serve (ctx : Proto.msg Engine.ctx) w rep rid tc =
  match Hashtbl.find_opt rep.served rid with
  | Some r -> (r, false)
  | None ->
    let rsp =
      Tel.with_span ~name:"cluster.serve"
        ~attrs:(fun () ->
          [ ("node", string_of_int ctx.self); ("rid", string_of_int rid) ])
        (fun () ->
          Server.handle ~id:rid
            ?context:(if w.trace_on then Some tc else None)
            rep.server w.reqs.(rid))
    in
    ctx.charge (max 1 rsp.Request.rsp_steps);
    if Tel.is_enabled () then
      Tel.count
        ~labels:[ ("node", string_of_int ctx.self) ]
        "gp_cluster_serves_total" 1;
    let r =
      (Request.response_fingerprint rsp, Request.ok rsp, rsp.Request.rsp_cached)
    in
    Hashtbl.replace rep.served rid r;
    (r, true)

let start_round (ctx : Proto.msg Engine.ctx) w rep ~tc =
  rep.best <- ctx.self;
  rep.electing <- true;
  let rtc =
    if w.trace_on then begin
      rep.rep_round_span <- fresh_span w;
      rep.rep_round_trace <- Context.trace tc;
      rep.rep_round_parent <- Context.span tc;
      rep.rep_round_start <- ctx.now ();
      Context.v ~trace:rep.rep_round_trace ~span:rep.rep_round_span
    end
    else Context.none
  in
  each_replica w ~except:ctx.self (fun j ->
      ctx.send j (Proto.Elect { uid = ctx.self; tc = rtc }));
  ctx.timer ~delay:w.tuning.settle Proto.Election_settle

let replica_msg (ctx : Proto.msg Engine.ctx) w rep msg =
  match msg with
  | Proto.Elect { uid; tc = _ } -> if uid > rep.best then rep.best <- uid
  | Proto.Election_settle ->
    if rep.electing then begin
      rep.electing <- false;
      let won = rep.best = ctx.self in
      if w.trace_on && rep.rep_round_span <> 0 then
        emit w ~node:ctx.self ~trace:rep.rep_round_trace
          ~id:rep.rep_round_span ~parent:rep.rep_round_parent
          ~name:"cluster.elect_round" ~start:rep.rep_round_start
          ~stop:(ctx.now ())
          [ ("node", string_of_int ctx.self);
            ("best", string_of_int rep.best);
            ("won", string_of_bool won) ];
      if won then begin
        rep.rep_leader <- Some ctx.self;
        let ctc =
          if w.trace_on then
            Context.v ~trace:rep.rep_round_trace ~span:rep.rep_round_span
          else Context.none
        in
        ctx.send 0 (Proto.Coord { uid = ctx.self; tc = ctc });
        each_replica w ~except:ctx.self (fun j ->
            ctx.send j (Proto.Coord { uid = ctx.self; tc = ctc }))
      end
    end
  | Proto.Coord { uid; tc = _ } ->
    (* accept-max within a round; a stale higher uid from a dead leader
       is corrected by the next heartbeat timeout *)
    (match rep.rep_leader with
     | None -> rep.rep_leader <- Some uid
     | Some l -> if uid >= l then rep.rep_leader <- Some uid)
  | Proto.Start_election { tc } -> start_round ctx w rep ~tc
  | Proto.Do_request { rid; attempt; tc } ->
    let now = ctx.now () in
    let already = Hashtbl.mem rep.served rid in
    let backlog = Float.max 0.0 (rep.busy_until -. now) in
    if
      (not already)
      && w.tuning.shed_backlog > 0.0
      && backlog > w.tuning.shed_backlog
    then begin
      (* typed overload rejection: the serialized backlog is past its
         bound, so refuse rather than queue — the router records a shed
         verdict for the client instead of waiting on a reply that
         would only arrive later and later *)
      let stc =
        if w.trace_on then begin
          let sp = fresh_span w in
          emit w ~node:ctx.self ~trace:(Context.trace tc) ~id:sp
            ~parent:(Context.span tc) ~name:"cluster.shed" ~start:now
            ~stop:now
            [ ("node", string_of_int ctx.self); ("rid", string_of_int rid);
              ("backlog", Printf.sprintf "%.2f" backlog) ];
          Context.v ~trace:(Context.trace tc) ~span:sp
        end
        else Context.none
      in
      ctx.send 0 (Proto.Shed { rid; replica = ctx.self; tc = stc })
    end
    else begin
      let (fp, ok, cached), fresh = serve ctx w rep rid tc in
      (* the serve span is a zero-duration instant: [charge] accounts
         steps without advancing simulated time. Its id is echoed on the
         Reply and parents the Replicate fan-out, so both legs resolve. *)
      let stc =
        if w.trace_on then begin
          let sp = fresh_span w in
          emit w ~node:ctx.self ~trace:(Context.trace tc) ~id:sp
            ~parent:(Context.span tc) ~name:"cluster.serve" ~start:now
            ~stop:now
            [ ("node", string_of_int ctx.self); ("rid", string_of_int rid);
              ("attempt", string_of_int attempt);
              ("fresh", string_of_bool fresh);
              ("cached", string_of_bool cached) ];
          Metrics.inc w.node_metrics.(ctx.self) "gp_cluster_serves_total";
          Context.v ~trace:(Context.trace tc) ~span:sp
        end
        else Context.none
      in
      (* the simulated service cost of this serve: fresh misses pay
         [service_time], fresh cache hits [service_time_hit], memoized
         re-deliveries nothing. Zero (the default) keeps the reply
         instantaneous — bit-identical to the pre-scenario protocol. *)
      let st =
        if not fresh then 0.0
        else if cached then w.tuning.service_time_hit
        else w.tuning.service_time
      in
      if st <= 0.0 && backlog <= 0.0 then begin
        ctx.send 0
          (Proto.Reply { rid; replica = ctx.self; fp; ok; cached; tc = stc });
        (* first service of a write fans out to the followers; the served
           table makes re-deliveries idempotent on both ends *)
        if fresh && Proto.is_write w.reqs.(rid) then
          each_replica w ~except:ctx.self (fun j ->
              ctx.send j (Proto.Replicate { rid; tc = stc }))
      end
      else begin
        (* a busy replica serializes: the reply leaves when the backlog
           plus this request's own service time has elapsed. Replication
           proceeds immediately — followers warm up while the client
           reply waits its turn. *)
        if fresh && Proto.is_write w.reqs.(rid) then
          each_replica w ~except:ctx.self (fun j ->
              ctx.send j (Proto.Replicate { rid; tc = stc }));
        rep.busy_until <- now +. backlog +. st;
        ctx.timer ~delay:(backlog +. st) (Proto.Reply_due { rid; tc = stc })
      end
    end
  | Proto.Replicate { rid; tc } ->
    let _, fresh = serve ctx w rep rid tc in
    if w.trace_on then begin
      let now = ctx.now () in
      emit w ~node:ctx.self ~trace:(Context.trace tc) ~id:(fresh_span w)
        ~parent:(Context.span tc) ~name:"cluster.replicate" ~start:now
        ~stop:now
        [ ("node", string_of_int ctx.self); ("rid", string_of_int rid);
          ("fresh", string_of_bool fresh) ];
      Metrics.inc w.node_metrics.(ctx.self) "gp_cluster_replicates_total"
    end
  | Proto.Ping { tc } ->
    if rep.rep_leader = Some ctx.self then begin
      let htc =
        if w.trace_on then begin
          let sp = fresh_span w in
          let now = ctx.now () in
          emit w ~node:ctx.self ~trace:(Context.trace tc) ~id:sp
            ~parent:(Context.span tc) ~name:"cluster.heartbeat" ~start:now
            ~stop:now
            [ ("node", string_of_int ctx.self) ];
          Context.v ~trace:(Context.trace tc) ~span:sp
        end
        else Context.none
      in
      ctx.send 0 (Proto.Heartbeat { uid = ctx.self; tc = htc })
    end
  | Proto.Reply_due { rid; tc } -> (
    (* the deferred reply: the answer was memoized at serve time, the
       timer only models when the serialized server gets to send it *)
    match Hashtbl.find_opt rep.served rid with
    | Some (fp, ok, cached) ->
      ctx.send 0 (Proto.Reply { rid; replica = ctx.self; fp; ok; cached; tc })
    | None -> ())
  | Proto.Join { tc } ->
    if w.trace_on then begin
      let now = ctx.now () in
      emit w ~node:ctx.self ~trace:(Context.trace tc) ~id:(fresh_span w)
        ~parent:(Context.span tc) ~name:"cluster.join" ~start:now ~stop:now
        [ ("node", string_of_int ctx.self) ]
    end
  | Proto.Retire { tc = _ } | Proto.Shutdown { tc = _ } ->
    ctx.decide (string_of_int (Hashtbl.length rep.served));
    ctx.halt ()
  | Proto.Arrive _ | Proto.Reply _ | Proto.Retry_check _ | Proto.Hb_check
  | Proto.Heartbeat _ | Proto.Shed _ | Proto.Elastic _ ->
    ()

(* -------------------------------------------------------------- *)
(* Router machine                                                  *)
(* -------------------------------------------------------------- *)

(* Space-saving tick for one read dispatch key: tracked keys bump their
   counter, new keys either take a free slot or evict the smallest
   counter and inherit it (the classic overestimate-by-at-most-min
   guarantee). Crossing the promotion threshold promotes the key to
   replicated reads. Deterministic: ties break on the lowest slot. *)
let hk_tick w rt key =
  let cap = w.tuning.hot_capacity in
  let count =
    match Hashtbl.find_opt rt.hk_slots key with
    | Some i ->
      rt.hk_counts.(i) <- rt.hk_counts.(i) + 1;
      rt.hk_counts.(i)
    | None ->
      if rt.hk_used < cap then begin
        let i = rt.hk_used in
        rt.hk_used <- i + 1;
        rt.hk_keys.(i) <- key;
        rt.hk_counts.(i) <- 1;
        Hashtbl.replace rt.hk_slots key i;
        1
      end
      else begin
        let mi = ref 0 in
        for i = 1 to cap - 1 do
          if rt.hk_counts.(i) < rt.hk_counts.(!mi) then mi := i
        done;
        let i = !mi in
        Hashtbl.remove rt.hk_slots rt.hk_keys.(i);
        rt.hk_keys.(i) <- key;
        rt.hk_counts.(i) <- rt.hk_counts.(i) + 1;
        Hashtbl.replace rt.hk_slots key i;
        rt.hk_counts.(i)
      end
  in
  if count >= w.tuning.hot_promote_after && not (Hashtbl.mem rt.promoted key)
  then begin
    Hashtbl.replace rt.promoted key (ref 0);
    w.promotions <- w.promotions + 1;
    w.promoted_keys <- key :: w.promoted_keys
  end

let read_target w rt rid attempt =
  if w.affinity then begin
    let key = Request.key w.reqs.(rid) in
    match
      (* skip the string hash entirely while nothing is promoted *)
      if Hashtbl.length rt.promoted = 0 then None
      else Hashtbl.find_opt rt.promoted key
    with
    | Some rot when w.tuning.hot_spread > 1 ->
      (* a promoted hot key reads from any of the first [hot_spread]
         ring successors, round-robin per fresh dispatch; retries keep
         walking the same rotation so attempt k still lands elsewhere *)
      let succ = Hash_ring.successors w.ring key in
      let k = min w.tuning.hot_spread (List.length succ) in
      let i = (!rot + attempt) mod k in
      if attempt = 0 then incr rot;
      List.nth succ i
    | _ ->
      (* first dispatch goes to the shard owner — which is successor 0
         by construction, so skip the full successor walk on the hot
         path (it is O(ring points) and dominates large-fleet runs) *)
      if attempt = 0 then Hash_ring.shard w.ring key
      else
        let succ = Hash_ring.successors w.ring key in
        List.nth succ (attempt mod List.length succ)
  end
  else 1 + ((rid + attempt) mod w.n_replicas)

(* Close the open attempt span, attributing its outcome ("ok",
   "retry", or "superseded" when a duplicate flush re-dispatches the
   same attempt). Emitting before any overwrite keeps every serve
   span's parent resolvable. *)
let close_attempt w p ~stop ~outcome =
  if p.p_att_span <> 0 then begin
    emit w ~node:0 ~trace:p.p_rid ~id:p.p_att_span ~parent:p.p_req_span
      ~name:"cluster.attempt" ~start:p.p_att_start ~stop
      [ ("attempt", string_of_int p.p_attempt);
        ("target", string_of_int p.p_att_target);
        ("outcome", outcome) ];
    p.p_att_span <- 0
  end

(* Close an open leaderless-parking window as an election-stall span. *)
let close_park w p ~stop =
  if not (Float.is_nan p.p_park_since) then begin
    emit w ~node:0 ~trace:p.p_rid ~id:(fresh_span w) ~parent:p.p_req_span
      ~name:"cluster.park" ~start:p.p_park_since ~stop
      [ ("cause", "no-leader") ];
    p.p_park_since <- nan
  end

(* Dispatch the pending request's next attempt. Reads go to the shard
   owner, then walk its ring successors on retry; writes go to the
   leader, or park in [wait_leader] until a coordinator is known (the
   Coord acceptance flushes the queue). Every dispatch arms its own
   retry timer. *)
let dispatch (ctx : Proto.msg Engine.ctx) w rt p =
  let rid = p.p_rid and attempt = p.p_attempt in
  let fire target =
    let tc =
      if w.trace_on then begin
        close_park w p ~stop:(ctx.now ());
        close_attempt w p ~stop:(ctx.now ()) ~outcome:"superseded";
        p.p_att_span <- fresh_span w;
        p.p_att_start <- ctx.now ();
        p.p_att_target <- target;
        Metrics.inc w.node_metrics.(0)
          ~labels:[ ("shard", string_of_int target) ]
          "gp_cluster_shard_dispatch_total";
        Metrics.inc w.node_metrics.(0)
          ~labels:[ ("key", Request.key w.reqs.(rid)) ]
          "gp_cluster_key_dispatch_total";
        Context.v ~trace:rid ~span:p.p_att_span
      end
      else Context.none
    in
    ctx.send target (Proto.Do_request { rid; attempt; tc });
    ctx.timer ~delay:(backoff w attempt) (Proto.Retry_check { rid; attempt })
  in
  if p.p_write then
    match rt.rt_leader with
    | Some l -> fire l
    | None ->
      if w.trace_on && Float.is_nan p.p_park_since then
        p.p_park_since <- ctx.now ();
      Queue.push rid rt.wait_leader
  else begin
    if
      attempt = 0 && w.affinity
      && w.tuning.hot_capacity > 0
      && w.tuning.hot_promote_after > 0
    then hk_tick w rt (Request.key w.reqs.(rid));
    fire (read_target w rt rid attempt)
  end

let start_election (ctx : Proto.msg Engine.ctx) w rt =
  w.elections <- w.elections + 1;
  rt.last_election <- ctx.now ();
  if Tel.is_enabled () then Tel.count "gp_cluster_elections_total" 1;
  let tc =
    if w.trace_on then begin
      (* a round that never produced a Coord gets closed as superseded
         before the fresh root opens — its replica rounds stay parented
         under the emitted span, so nothing orphans *)
      if rt.rt_el_span <> 0 then
        emit w ~node:0 ~trace:rt.rt_el_trace ~id:rt.rt_el_span ~parent:0
          ~name:"cluster.election" ~start:rt.rt_el_start ~stop:(ctx.now ())
          [ ("outcome", "superseded") ];
      rt.rt_el_span <- fresh_span w;
      rt.rt_el_trace <- fresh_trace w;
      rt.rt_el_start <- ctx.now ();
      Metrics.inc w.node_metrics.(0) "gp_cluster_elections_total";
      Context.v ~trace:rt.rt_el_trace ~span:rt.rt_el_span
    end
    else Context.none
  in
  each_replica w ~except:0 (fun j ->
      ctx.send j (Proto.Start_election { tc }))

(* Everything is done (served or shed): quiesce the cluster. *)
let finish_if_done (ctx : Proto.msg Engine.ctx) w =
  if w.completed = Array.length w.reqs then begin
    each_replica w ~except:0 (fun j ->
        ctx.send j (Proto.Shutdown { tc = Context.none }));
    ctx.decide (string_of_int w.completed);
    ctx.halt ()
  end

(* Open-loop arrivals chain: each Arrive schedules the next from the
   arrival clock, so the heap holds one future arrival instead of the
   whole workload — a million-request run stays flat. *)
let schedule_next_arrival (ctx : Proto.msg Engine.ctx) w rid =
  match w.arrivals with
  | None -> ()
  | Some arr ->
    let next = rid + 1 in
    if next < Array.length w.reqs then
      ctx.timer
        ~delay:(Float.max 1e-9 (arr.(next) -. ctx.now ()))
        (Proto.Arrive next)

let shed_record w rid ~write ~replica ~attempts ~arrive ~done_ =
  w.records.(rid) <-
    Some
      { rc_rid = rid; rc_kind = Request.kind w.reqs.(rid); rc_write = write;
        rc_replica = replica; rc_fp = ""; rc_ok = false; rc_cached = false;
        rc_attempts = attempts; rc_shed = true; rc_arrive = arrive;
        rc_done = done_ };
  w.completed <- w.completed + 1

let router_msg (ctx : Proto.msg Engine.ctx) w rt msg =
  match msg with
  | Proto.Arrive rid ->
    schedule_next_arrival ctx w rid;
    let inflight = Hashtbl.length rt.pending in
    if w.tuning.queue_bound > 0 && inflight >= w.tuning.queue_bound then begin
      (* admission control: the router queue is full, shed at the door —
         a typed zero-latency rejection, never a hang *)
      let now = ctx.now () in
      shed_record w rid ~write:(Proto.is_write w.reqs.(rid)) ~replica:0
        ~attempts:0 ~arrive:now ~done_:now;
      w.shed_admission <- w.shed_admission + 1;
      if w.trace_on then
        emit w ~node:0 ~trace:rid ~id:(fresh_span w) ~parent:0
          ~name:"cluster.request" ~start:now ~stop:now
          [ ("rid", string_of_int rid);
            ("kind", Request.kind_name (Request.kind w.reqs.(rid)));
            ("shed", "admission") ];
      finish_if_done ctx w
    end
    else begin
      let p =
        { p_rid = rid; p_write = Proto.is_write w.reqs.(rid);
          p_arrive = ctx.now (); p_attempt = 0;
          p_req_span = (if w.trace_on then fresh_span w else 0);
          p_att_span = 0; p_att_start = 0.0; p_att_target = 0;
          p_park_since = nan }
      in
      Hashtbl.replace rt.pending rid p;
      if inflight + 1 > w.peak_inflight then w.peak_inflight <- inflight + 1;
      dispatch ctx w rt p
    end
  | Proto.Retry_check { rid; attempt } ->
    (match Hashtbl.find_opt rt.pending rid with
     | Some p when p.p_attempt = attempt ->
       if Tel.is_enabled () then Tel.count "gp_cluster_retries_total" 1;
       if w.trace_on then begin
         close_attempt w p ~stop:(ctx.now ()) ~outcome:"retry";
         Metrics.inc w.node_metrics.(0) "gp_cluster_retries_total"
       end;
       p.p_attempt <- attempt + 1;
       dispatch ctx w rt p
     | Some _ | None -> ())
  | Proto.Reply { rid; replica; fp; ok; cached; tc = _ } ->
    (match Hashtbl.find_opt rt.pending rid with
     | None -> () (* duplicate reply from a retried request *)
     | Some p ->
       Hashtbl.remove rt.pending rid;
       let done_ = ctx.now () in
       w.records.(rid) <-
         Some
           { rc_rid = rid; rc_kind = Request.kind w.reqs.(rid);
             rc_write = p.p_write; rc_replica = replica; rc_fp = fp;
             rc_ok = ok; rc_cached = cached; rc_attempts = p.p_attempt + 1;
             rc_shed = false; rc_arrive = p.p_arrive; rc_done = done_ };
       w.completed <- w.completed + 1;
       if Tel.is_enabled () then
         Tel.observe "gp_cluster_request_time" (done_ -. p.p_arrive);
       if w.trace_on then begin
         close_attempt w p ~stop:done_ ~outcome:"ok";
         close_park w p ~stop:done_;
         emit w ~node:0 ~trace:rid ~id:p.p_req_span ~parent:0
           ~name:"cluster.request" ~start:p.p_arrive ~stop:done_
           [ ("rid", string_of_int rid);
             ("kind", Request.kind_name (Request.kind w.reqs.(rid)));
             ("write", string_of_bool p.p_write);
             ("replica", string_of_int replica);
             ("attempts", string_of_int (p.p_attempt + 1)) ];
         Metrics.observe w.node_metrics.(0) "gp_cluster_request_time"
           (done_ -. p.p_arrive)
       end;
       finish_if_done ctx w)
  | Proto.Shed { rid; replica; tc = _ } ->
    (match Hashtbl.find_opt rt.pending rid with
     | None -> () (* a racing Reply settled it first *)
     | Some p ->
       Hashtbl.remove rt.pending rid;
       let done_ = ctx.now () in
       shed_record w rid ~write:p.p_write ~replica
         ~attempts:(p.p_attempt + 1) ~arrive:p.p_arrive ~done_;
       w.shed_overload <- w.shed_overload + 1;
       if w.trace_on then begin
         close_attempt w p ~stop:done_ ~outcome:"shed";
         close_park w p ~stop:done_;
         emit w ~node:0 ~trace:rid ~id:p.p_req_span ~parent:0
           ~name:"cluster.request" ~start:p.p_arrive ~stop:done_
           [ ("rid", string_of_int rid);
             ("kind", Request.kind_name (Request.kind w.reqs.(rid)));
             ("write", string_of_bool p.p_write);
             ("replica", string_of_int replica);
             ("attempts", string_of_int (p.p_attempt + 1));
             ("shed", "overload") ]
       end;
       finish_if_done ctx w)
  | Proto.Elastic { join; replica = r } ->
    if join then begin
      if r >= 1 && r <= w.n_replicas && not w.active.(r) then begin
        w.ring <- Hash_ring.add_replica w.ring r;
        w.active.(r) <- true;
        w.joined <- w.joined + 1;
        let jtc =
          if w.trace_on then begin
            let sp = fresh_span w in
            let tr = fresh_trace w in
            let now = ctx.now () in
            emit w ~node:0 ~trace:tr ~id:sp ~parent:0 ~name:"cluster.elastic"
              ~start:now ~stop:now
              [ ("event", "join"); ("replica", string_of_int r) ];
            Context.v ~trace:tr ~span:sp
          end
          else Context.none
        in
        ctx.send r (Proto.Join { tc = jtc });
        (* state handoff as replicated writes: replay every completed
           write to the joiner. Its served memo and content caches make
           the replay idempotent, and the ring's minimal movement bounds
           the read-side cache-miss storm to the keys on its arcs. *)
        Array.iter
          (function
            | Some rc when rc.rc_write && not rc.rc_shed ->
              w.handoffs <- w.handoffs + 1;
              ctx.send r (Proto.Replicate { rid = rc.rc_rid; tc = jtc })
            | _ -> ())
          w.records
      end
    end
    else if
      r >= 1 && r <= w.n_replicas
      && w.active.(r)
      && List.length (Hash_ring.replicas w.ring) > 1
    then begin
      w.ring <- Hash_ring.remove_replica w.ring r;
      w.active.(r) <- false;
      w.left <- w.left + 1;
      let ltc =
        if w.trace_on then begin
          let sp = fresh_span w in
          let tr = fresh_trace w in
          let now = ctx.now () in
          emit w ~node:0 ~trace:tr ~id:sp ~parent:0 ~name:"cluster.elastic"
            ~start:now ~stop:now
            [ ("event", "leave"); ("replica", string_of_int r) ];
          Context.v ~trace:tr ~span:sp
        end
        else Context.none
      in
      ctx.send r (Proto.Retire { tc = ltc });
      (* a graceful leader departure re-elects immediately rather than
         waiting out the heartbeat silence *)
      if rt.rt_leader = Some r then begin
        rt.rt_leader <- None;
        start_election ctx w rt
      end
    end
  | Proto.Coord { uid; tc = _ } ->
    let accept =
      match rt.rt_leader with None -> true | Some l -> uid >= l
    in
    if accept then begin
      rt.rt_leader <- Some uid;
      rt.last_hb <- ctx.now ();
      w.leader_log <- (ctx.now (), uid) :: w.leader_log;
      (match rt.detect_at with
       | Some t0 ->
         w.failovers <- (t0, ctx.now ()) :: w.failovers;
         if Tel.is_enabled () then
           Tel.observe "gp_cluster_failover_time" (ctx.now () -. t0);
         if w.trace_on then
           Metrics.observe w.node_metrics.(0) "gp_cluster_failover_time"
             (ctx.now () -. t0);
         rt.detect_at <- None
       | None -> ());
      if w.trace_on && rt.rt_el_span <> 0 then begin
        emit w ~node:0 ~trace:rt.rt_el_trace ~id:rt.rt_el_span ~parent:0
          ~name:"cluster.election" ~start:rt.rt_el_start ~stop:(ctx.now ())
          [ ("winner", string_of_int uid) ];
        rt.rt_el_span <- 0
      end;
      (* a leader exists again: release the parked writes *)
      while not (Queue.is_empty rt.wait_leader) do
        let rid = Queue.pop rt.wait_leader in
        match Hashtbl.find_opt rt.pending rid with
        | Some p -> dispatch ctx w rt p
        | None -> ()
      done
    end
  | Proto.Heartbeat { uid; tc } ->
    if rt.rt_leader = Some uid then begin
      rt.last_hb <- ctx.now ();
      if
        w.trace_on && rt.rt_probe_span <> 0
        && Context.trace tc = rt.rt_probe_trace
      then begin
        emit w ~node:0 ~trace:rt.rt_probe_trace ~id:rt.rt_probe_span
          ~parent:0 ~name:"cluster.probe" ~start:rt.rt_probe_start
          ~stop:(ctx.now ())
          [ ("leader", string_of_int uid) ];
        rt.rt_probe_span <- 0
      end
    end
  | Proto.Hb_check ->
    ctx.timer ~delay:w.tuning.hb_interval Proto.Hb_check;
    (match rt.rt_leader with
     | Some _ when ctx.now () -. rt.last_hb > w.tuning.hb_timeout ->
       rt.rt_leader <- None;
       if rt.detect_at = None then rt.detect_at <- Some (ctx.now ());
       start_election ctx w rt
     | Some l ->
       (* an unanswered probe's root is simply never emitted: a
          heartbeat span whose Ping landed but whose reply was dropped
          surfaces as an orphan — by design, not attached to anything *)
       let tc =
         if w.trace_on then begin
           rt.rt_probe_span <- fresh_span w;
           rt.rt_probe_trace <- fresh_trace w;
           rt.rt_probe_start <- ctx.now ();
           Context.v ~trace:rt.rt_probe_trace ~span:rt.rt_probe_span
         end
         else Context.none
       in
       ctx.send l (Proto.Ping { tc })
     | None
       when Hashtbl.length rt.pending > 0
            && ctx.now () -. rt.last_election > w.tuning.hb_timeout ->
       (* an election round went fully missing (dropped Elects/Coords);
          kick off another rather than stalling the parked writes *)
       start_election ctx w rt
     | None -> ())
  | Proto.Do_request _ | Proto.Replicate _ | Proto.Elect _
  | Proto.Election_settle | Proto.Start_election _ | Proto.Ping _
  | Proto.Shutdown _ | Proto.Reply_due _ | Proto.Join _ | Proto.Retire _ ->
    ()

(* -------------------------------------------------------------- *)
(* Assembly                                                        *)
(* -------------------------------------------------------------- *)

let initial w (ctx : Proto.msg Engine.ctx) =
  if ctx.self = 0 then begin
    (* fixed-cadence runs pre-schedule every arrival (the pre-scenario
       event stream, kept bit-identical); an open-loop arrival clock is
       chained one timer at a time by [schedule_next_arrival] *)
    (match w.arrivals with
     | None ->
       Array.iteri
         (fun rid _ ->
           ctx.timer
             ~delay:(float_of_int (rid + 1) *. w.tuning.arrival_interval)
             (Proto.Arrive rid))
         w.reqs
     | Some arr ->
       if Array.length w.reqs > 0 then
         ctx.timer ~delay:(Float.max 1e-9 arr.(0)) (Proto.Arrive 0));
    List.iter
      (fun ev ->
        ctx.timer ~delay:(Float.max 1e-9 ev.el_at)
          (Proto.Elastic { join = ev.el_join; replica = ev.el_replica }))
      w.elastic;
    ctx.timer ~delay:w.tuning.hb_timeout Proto.Hb_check;
    w.elections <- w.elections + 1; (* the initial round, started below *)
    if w.trace_on then
      Metrics.inc w.node_metrics.(0) "gp_cluster_elections_total";
    R_router
      { pending = Hashtbl.create 64; wait_leader = Queue.create ();
        hk_slots = Hashtbl.create 16;
        hk_keys = Array.make (max 1 w.tuning.hot_capacity) "";
        hk_counts = Array.make (max 1 w.tuning.hot_capacity) 0;
        hk_used = 0; promoted = Hashtbl.create 8;
        rt_leader = None; last_hb = 0.0; detect_at = None;
        last_election = 0.0;
        rt_el_span = w.el0_span; rt_el_trace = w.el0_trace;
        rt_el_start = 0.0; rt_probe_span = 0; rt_probe_trace = 0;
        rt_probe_start = 0.0 }
  end
  else begin
    let config = { w.server_config with Server.now = ctx.now } in
    let server =
      Server.create ~config ~declare_standard:w.declare_standard ()
    in
    w.servers.(ctx.self) <- Some server;
    let rep =
      { server; served = Hashtbl.create 64; busy_until = 0.0;
        best = ctx.self;
        rep_leader = None; electing = false; rep_round_span = 0;
        rep_round_trace = 0; rep_round_parent = 0; rep_round_start = 0.0 }
    in
    (* only initially-active replicas campaign; a late joiner idles
       until the router's Elastic timer rings it in — it votes in any
       later round it is active for *)
    if w.active.(ctx.self) then
      (* the initial round parents under the pre-allocated election root
         (emitted by the router when the first Coord lands) *)
      start_round ctx w rep
        ~tc:
          (if w.trace_on then Context.v ~trace:w.el0_trace ~span:w.el0_span
           else Context.none);
    R_replica rep
  end

let algorithm w =
  {
    Engine.algo_name = "gp-cluster";
    initial = initial w;
    on_message =
      (fun ctx st ~src:_ msg ->
        (match st with
         | R_router rt -> router_msg ctx w rt msg
         | R_replica rep -> replica_msg ctx w rep msg);
        st);
  }
