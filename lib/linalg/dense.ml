(* Dense rectangular matrices and the CLACRM mixed-precision kernel
   (Section 2.4).

   CLACRM multiplies a complex matrix by a real matrix. Because the scalar
   type of a vector space is not determined by the vector type, the
   multiplication C[i][j] += A[i][k] * B[k][j] may use the cheap
   complex-times-real product (2 real multiplies) instead of promoting B to
   complex and paying the full complex product (4 multiplies + 2 adds).
   [gemm_mixed] is the CLACRM path; [gemm_promoted] is the baseline a
   scalar-as-associated-type design forces. *)

type cmat = {
  rows : int;
  cols : int;
  (* split storage: better locality for the kernels *)
  re : float array;
  im : float array;
}

type rmat = { r_rows : int; r_cols : int; data : float array }

let cmat_create rows cols =
  { rows; cols; re = Array.make (rows * cols) 0.0;
    im = Array.make (rows * cols) 0.0 }

let rmat_create r_rows r_cols =
  { r_rows; r_cols; data = Array.make (r_rows * r_cols) 0.0 }

let cmat_init rows cols f =
  let m = cmat_create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let z = f i j in
      m.re.((i * cols) + j) <- Complexf.re z;
      m.im.((i * cols) + j) <- Complexf.im z
    done
  done;
  m

let rmat_init r_rows r_cols f =
  let m = rmat_create r_rows r_cols in
  for i = 0 to r_rows - 1 do
    for j = 0 to r_cols - 1 do
      m.data.((i * r_cols) + j) <- f i j
    done
  done;
  m

let cmat_get m i j =
  Complexf.make m.re.((i * m.cols) + j) m.im.((i * m.cols) + j)

let cmat_set m i j z =
  m.re.((i * m.cols) + j) <- Complexf.re z;
  m.im.((i * m.cols) + j) <- Complexf.im z

let rmat_get m i j = m.data.((i * m.r_cols) + j)

let cmat_close ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < eps) a.re b.re
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < eps) a.im b.im

(* C = A (complex, m x k) * B (real, k x n) — the CLACRM kernel: each inner
   product step costs 2 real multiply-adds. *)
let gemm_mixed a b =
  if a.cols <> b.r_rows then
    invalid_arg
      (Printf.sprintf "gemm_mixed: %dx%d * %dx%d" a.rows a.cols b.r_rows
         b.r_cols);
  let m = a.rows and k = a.cols and n = b.r_cols in
  let c = cmat_create m n in
  for i = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let are = a.re.((i * k) + kk) and aim = a.im.((i * k) + kk) in
      let brow = kk * n in
      for j = 0 to n - 1 do
        let bv = b.data.(brow + j) in
        c.re.((i * n) + j) <- c.re.((i * n) + j) +. (are *. bv);
        c.im.((i * n) + j) <- c.im.((i * n) + j) +. (aim *. bv)
      done
    done
  done;
  c

(* Baseline: promote B to complex, then full complex GEMM — 4 multiplies +
   2 adds per step. Same result, roughly twice the floating-point work. *)
let promote b =
  let m = cmat_create b.r_rows b.r_cols in
  Array.blit b.data 0 m.re 0 (Array.length b.data);
  m

let gemm_complex a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "gemm_complex: %dx%d * %dx%d" a.rows a.cols b.rows
         b.cols);
  let m = a.rows and k = a.cols and n = b.cols in
  let c = cmat_create m n in
  for i = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let are = a.re.((i * k) + kk) and aim = a.im.((i * k) + kk) in
      let brow = kk * n in
      for j = 0 to n - 1 do
        let bre = b.re.(brow + j) and bim = b.im.(brow + j) in
        c.re.((i * n) + j) <-
          c.re.((i * n) + j) +. ((are *. bre) -. (aim *. bim));
        c.im.((i * n) + j) <-
          c.im.((i * n) + j) +. ((are *. bim) +. (aim *. bre))
      done
    done
  done;
  c

let gemm_promoted a b = gemm_complex a (promote b)

(* Operation counts per element-product, for the reproduction report. *)
let flops_mixed ~m ~k ~n = 2 * 2 * m * k * n (* 2 mul + 2 add *)
let flops_promoted ~m ~k ~n = (4 + 4) * m * k * n (* 4 mul + 4 add *)
