(* The abstract interpreter: flow-sensitive symbolic execution of the AST
   against the library specifications, producing high-level diagnostics.

   "STLlint permits static checking of iterators by analyzing at the
   concept level, and is thereby able to uncover this error to produce a
   meaningful, high-level error message." *)

type severity = Error | Warning | Suggestion

type diagnostic = {
  d_severity : severity;
  d_message : string;
  d_where : string; (* statement label *)
}

let pp_severity ppf = function
  | Error -> Fmt.string ppf "Error"
  | Warning -> Fmt.string ppf "Warning"
  | Suggestion -> Fmt.string ppf "Suggestion"

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a: %s" pp_severity d.d_severity d.d_message;
  if d.d_where <> "" then Fmt.pf ppf "@,    at: %s" d.d_where

(* The Section 3.2 suggestion, verbatim from the paper. *)
let sorted_linear_search_message alternative =
  Printf.sprintf
    "potential optimization: the incoming sequence [first, last) is sorted, \
     but will be searched linearly with this algorithm. Consider replacing \
     this algorithm with one specialized for sorted sequences (e.g., %s)"
    alternative

type ctx = {
  mutable diags : diagnostic list; (* reverse order; deduplicated *)
  mutable steps : int; (* symbolic statements executed, loop bodies included *)
}

let emit ctx severity message where =
  let d = { d_severity = severity; d_message = message; d_where = where } in
  if
    not
      (List.exists
         (fun d' -> d'.d_message = d.d_message && d'.d_where = d.d_where)
         ctx.diags)
  then ctx.diags <- d :: ctx.diags

(* ------------------------------------------------------------------ *)
(* Iterator-use checks                                                 *)
(* ------------------------------------------------------------------ *)

(* After reporting a defective iterator use, the iterator's state is
   *poisoned* to I_top so one root cause produces one diagnostic instead of
   a cascade (standard checker hygiene). The checks therefore take and
   return the state. *)

let check_deref ctx st label it =
  match State.iter st it with
  | Some (State.I_singular _) ->
    emit ctx Error "attempt to dereference a singular iterator" label;
    State.set_iter st it State.I_top
  | Some (State.I_invalid why) ->
    emit ctx Error
      (Printf.sprintf
         "attempt to dereference an invalidated iterator (%s)" why)
      label;
    State.set_iter st it State.I_top
  | Some (State.I_end _) ->
    emit ctx Error "attempt to dereference a past-the-end iterator" label;
    State.set_iter st it State.I_top
  | Some (State.I_valid { maybe_end = true; _ }) ->
    emit ctx Warning
      "possible dereference of a past-the-end iterator: the result of an \
       algorithm was not compared against end()"
      label;
    st
  | Some (State.I_valid { maybe_end = false; _ }) | Some State.I_top -> st
  | None ->
    emit ctx Error (Printf.sprintf "use of undeclared iterator %s" it) label;
    State.set_iter st it State.I_top

let check_step ctx st label it =
  match State.iter st it with
  | Some (State.I_singular _) ->
    emit ctx Error "attempt to increment a singular iterator" label;
    State.set_iter st it State.I_top
  | Some (State.I_invalid why) ->
    emit ctx Error
      (Printf.sprintf "attempt to increment an invalidated iterator (%s)" why)
      label;
    State.set_iter st it State.I_top
  | Some (State.I_end _) ->
    emit ctx Warning "attempt to increment a past-the-end iterator" label;
    st
  | Some (State.I_valid _) | Some State.I_top -> st
  | None ->
    emit ctx Error (Printf.sprintf "use of undeclared iterator %s" it) label;
    State.set_iter st it State.I_top

let check_expr ctx st label e =
  List.fold_left (fun st it -> check_deref ctx st label it) st
    (Ast.derefs_in e)

(* ------------------------------------------------------------------ *)
(* Range classification                                                *)
(* ------------------------------------------------------------------ *)

type range_info = {
  ri_container : string option;
  ri_kind : Ast.container_kind option;
  ri_sorted : State.sortedness;
}

let unknown_range =
  { ri_container = None; ri_kind = None; ri_sorted = State.Unknown_sorted }

let range_info st = function
  | Ast.R_container c -> (
    match State.container st c with
    | Some cs ->
      { ri_container = Some c; ri_kind = Some cs.State.c_kind;
        ri_sorted = cs.State.c_sorted }
    | None -> unknown_range)
  | Ast.R_iters (i, _) -> (
    match State.iter st i with
    | Some (State.I_valid { c; _ }) | Some (State.I_end c) -> (
      match State.container st c with
      | Some cs ->
        { ri_container = Some c; ri_kind = Some cs.State.c_kind;
          ri_sorted = cs.State.c_sorted }
      | None -> unknown_range)
    | _ -> unknown_range)

(* ------------------------------------------------------------------ *)
(* Conditional refinement                                              *)
(* ------------------------------------------------------------------ *)

(* Refine iterator states under the truth/falsity of a condition: after
   `it != c.end()` holds, `it` is dereferenceable; when it fails, `it` is
   past-the-end. *)
let refine st cond truth =
  let refine_ne a b st =
    match State.iter st a, State.iter st b with
    | Some (State.I_valid v), Some (State.I_end c)
      when String.equal v.c c ->
      if truth then State.set_iter st a (State.I_valid { v with maybe_end = false })
      else State.set_iter st a (State.I_end c)
    | Some (State.I_end c), Some (State.I_valid v)
      when String.equal v.c c ->
      if truth then State.set_iter st b (State.I_valid { v with maybe_end = false })
      else State.set_iter st b (State.I_end c)
    | _ -> st
  in
  match cond with
  | Ast.Iter_ne (a, b) -> refine_ne a b st
  | Ast.Iter_eq (a, b) ->
    (* == is != with truth flipped *)
    let st' = refine_ne a b st in
    ignore st';
    (match State.iter st a, State.iter st b with
    | Some (State.I_valid v), Some (State.I_end c)
      when String.equal v.c c ->
      if truth then State.set_iter st a (State.I_end c)
      else State.set_iter st a (State.I_valid { v with maybe_end = false })
    | _ -> st)
  | Ast.Pred _ -> st

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let eval_iter_init ctx st label = function
  | Ast.Begin_of c -> (
    match State.container st c with
    | Some cs ->
      if cs.State.c_kind = Ast.Istream then State.I_valid { c; maybe_end = true }
      else State.I_valid { c; maybe_end = true }
      (* begin may equal end on an empty container *)
    | None ->
      emit ctx Error (Printf.sprintf "use of undeclared container %s" c) label;
      State.I_top)
  | Ast.End_of c -> (
    match State.container st c with
    | Some _ -> State.I_end c
    | None ->
      emit ctx Error (Printf.sprintf "use of undeclared container %s" c) label;
      State.I_top)
  | Ast.Copy_of other -> (
    match State.iter st other with
    | Some s -> s
    | None ->
      emit ctx Error
        (Printf.sprintf "copy of undeclared iterator %s" other)
        label;
      State.I_top)
  | Ast.Singular_init -> State.I_singular "default-initialised"

let set_container_sorted st c sorted =
  match State.container st c with
  | Some cs -> State.set_container st c { cs with State.c_sorted = sorted }
  | None -> st

let rec exec_stmt ctx st ({ Ast.label; node } : Ast.stmt) =
  ctx.steps <- ctx.steps + 1;
  match node with
  | Ast.Decl_container { name; kind; sorted } ->
    State.set_container st name
      {
        State.c_kind = kind;
        c_sorted = (if sorted then State.Sorted else State.Unknown_sorted);
      }
  | Ast.Decl_iter { name; init } | Ast.Assign_iter { name; init } ->
    State.set_iter st name (eval_iter_init ctx st label init)
  | Ast.Incr it -> (
    let st = check_step ctx st label it in
    (* stepping may reach end *)
    match State.iter st it with
    | Some (State.I_valid v) ->
      State.set_iter st it (State.I_valid { v with maybe_end = true })
    | _ -> st)
  | Ast.Decr it -> check_step ctx st label it
  | Ast.Deref_read it -> check_deref ctx st label it
  | Ast.Deref_write (it, e) ->
    let st = check_deref ctx st label it in
    let st = check_expr ctx st label e in
    (* writing through an iterator may break sortedness *)
    (match State.iter st it with
    | Some (State.I_valid { c; _ }) -> set_container_sorted st c State.Unknown_sorted
    | _ -> st)
  | Ast.Push_back (c, e) | Ast.Push_front (c, e) -> (
    let st = check_expr ctx st label e in
    match State.container st c with
    | Some cs ->
      let st = State.invalidate st ~container:c
          ~effect:(Spec.push_effect cs.State.c_kind) ~erased_at:None in
      set_container_sorted st c State.Unknown_sorted
    | None ->
      emit ctx Error (Printf.sprintf "use of undeclared container %s" c) label;
      st)
  | Ast.Pop_back c -> (
    match State.container st c with
    | Some cs ->
      State.invalidate st ~container:c
        ~effect:(Spec.push_effect cs.State.c_kind) ~erased_at:None
    | None -> st)
  | Ast.Erase { container = c; at; result } -> (
    (* erasing through an invalid iterator is itself an error, reported by
       the deref check *)
    let st = check_deref ctx st label at in
    match State.container st c with
    | Some cs ->
      let st =
        State.invalidate st ~container:c
          ~effect:(Spec.erase_effect cs.State.c_kind) ~erased_at:(Some at)
      in
      (match result with
      | Some r -> State.set_iter st r (State.I_valid { c; maybe_end = true })
      | None -> st)
    | None ->
      emit ctx Error (Printf.sprintf "use of undeclared container %s" c) label;
      st)
  | Ast.Insert { container = c; at; value; result } -> (
    let st = check_expr ctx st label value in
    (match State.iter st at with
    | Some (State.I_singular _) ->
      emit ctx Error "insert position is a singular iterator" label
    | Some (State.I_invalid why) ->
      emit ctx Error
        (Printf.sprintf "insert position is an invalidated iterator (%s)" why)
        label
    | _ -> ());
    match State.container st c with
    | Some cs ->
      let st =
        State.invalidate st ~container:c
          ~effect:(Spec.insert_effect cs.State.c_kind) ~erased_at:None
      in
      let st = set_container_sorted st c State.Unknown_sorted in
      (match result with
      | Some r -> State.set_iter st r (State.I_valid { c; maybe_end = false })
      | None -> st)
    | None ->
      emit ctx Error (Printf.sprintf "use of undeclared container %s" c) label;
      st)
  | Ast.Expr_stmt e -> check_expr ctx st label e
  | Ast.Algo { algo; args; result } -> exec_algo ctx st label algo args result
  | Ast.If (cond, then_, else_) ->
    let st =
      List.fold_left
        (fun st it -> check_deref ctx st label it)
        st (Ast.cond_derefs cond)
    in
    let st_then = exec_block ctx (refine st cond true) then_ in
    let st_else = exec_block ctx (refine st cond false) else_ in
    State.join st_then st_else
  | Ast.While (cond, body) ->
    let rec fix st n =
      let st =
        List.fold_left
          (fun st it -> check_deref ctx st label it)
          st (Ast.cond_derefs cond)
      in
      let inside = refine st cond true in
      let after = exec_block ctx inside body in
      let joined = State.join st after in
      if State.equal joined st || n > 20 then refine st cond false
      else fix joined (n + 1)
    in
    fix st 0

and exec_block ctx st stmts = List.fold_left (exec_stmt ctx) st stmts

and exec_algo ctx st label algo args result =
  match Spec.find_algo algo with
  | None ->
    emit ctx Warning
      (Printf.sprintf "no specification for algorithm %s: not checked" algo)
      label;
    st
  | Some spec ->
    (* collect the primary range and check iterator args *)
    let ranges =
      List.filter_map
        (function Ast.A_range r -> Some r | _ -> None)
        args
    in
    let st =
      List.fold_left
        (fun st arg ->
          match arg with
          | Ast.A_iter it -> check_step ctx st label it
          | Ast.A_value e -> check_expr ctx st label e
          | Ast.A_range (Ast.R_iters (i, j)) ->
            (* the iterators bounding a range must not be invalid *)
            List.fold_left
              (fun st it ->
                match State.iter st it with
                | Some (State.I_singular _) ->
                  emit ctx Error
                    (Printf.sprintf
                       "range argument of %s is a singular iterator" algo)
                    label;
                  State.set_iter st it State.I_top
                | Some (State.I_invalid why) ->
                  emit ctx Error
                    (Printf.sprintf
                       "range argument of %s was invalidated (%s)" algo why)
                    label;
                  State.set_iter st it State.I_top
                | _ -> st)
              st [ i; j ]
          | Ast.A_range (Ast.R_container _) | Ast.A_pred _ -> st)
        st args
    in
    let st = ref st in
    List.iter
      (fun r ->
        let info = range_info !st r in
        (* 1. iterator-concept (category) requirement *)
        (match info.ri_kind with
        | Some kind ->
          let cat = Ast.kind_category kind in
          (* 1a. the multipass semantic requirement: detected with the
             single-pass Input Iterator semantic archetype. Takes priority
             over the plain category mismatch because it is the semantic
             root cause. *)
          if spec.Spec.sp_multipass && cat = Gp_sequence.Iter.Input then
            emit ctx Error
              (Printf.sprintf
                 "%s requires the multipass property of ForwardIterator; an \
                  input stream iterator permits only one traversal of the \
                  sequence"
                 algo)
              label
          else if
            not (Gp_sequence.Iter.satisfies ~required:spec.Spec.sp_category cat)
          then
            emit ctx Error
              (Printf.sprintf
                 "%s requires %s, but %s iterators model only %s" algo
                 (Gp_sequence.Iter.category_name spec.Spec.sp_category)
                 (Ast.kind_name kind)
                 (Gp_sequence.Iter.category_name cat))
              label;
          (* 3. single-pass streams cannot be traversed twice *)
          (match info.ri_container, kind with
          | Some c, Ast.Istream ->
            if List.mem c !st.State.consumed_streams then
              emit ctx Error
                (Printf.sprintf
                   "input stream %s has already been traversed: single-pass \
                    iterators cannot traverse the sequence twice"
                   c)
                label
            else
              st :=
                { !st with
                  State.consumed_streams = c :: !st.State.consumed_streams }
          | _ -> ())
        | None -> ());
        (* 4. sortedness precondition / suggestion *)
        (match info.ri_sorted, spec.Spec.sp_requires_sorted with
        | State.Sorted, true -> ()
        | (State.Unsorted | State.Unknown_sorted), true ->
          emit ctx Warning
            (Printf.sprintf
               "cannot verify precondition of %s: the range may not be sorted"
               algo)
            label
        | State.Sorted, false ->
          (match spec.Spec.sp_sorted_alternative with
          | Some alt ->
            emit ctx Suggestion (sorted_linear_search_message alt) label
          | None -> ())
        | (State.Unsorted | State.Unknown_sorted), false -> ());
        (* 5. postconditions on the container *)
        (match info.ri_container with
        | Some c ->
          if spec.Spec.sp_establishes_sorted then
            st := set_container_sorted !st c State.Sorted
          else if spec.Spec.sp_mutates then
            st := set_container_sorted !st c State.Unknown_sorted
        | None -> ()))
      ranges;
    (* 6. result iterator shape *)
    (match result, spec.Spec.sp_result with
    | Some r, Spec.R_iter_maybe_end ->
      let c =
        List.find_map
          (fun rg ->
            match range_info !st rg with
            | { ri_container = Some c; _ } -> Some c
            | _ -> None)
          ranges
      in
      (match c with
      | Some c -> st := State.set_iter !st r (State.I_valid { c; maybe_end = true })
      | None -> st := State.set_iter !st r State.I_top)
    | Some r, Spec.R_iter_valid ->
      let c =
        List.find_map
          (fun rg ->
            match range_info !st rg with
            | { ri_container = Some c; _ } -> Some c
            | _ -> None)
          ranges
      in
      (match c with
      | Some c -> st := State.set_iter !st r (State.I_valid { c; maybe_end = false })
      | None -> st := State.set_iter !st r State.I_top)
    | Some r, Spec.R_none -> st := State.set_iter !st r State.I_top
    | None, _ -> ());
    !st

(* Entry point: check a whole program. *)
let check (program : Ast.stmt list) =
  let module Tel = Gp_telemetry.Tel in
  Tel.with_span ~name:"stllint.check"
    ~attrs:(fun () -> [ ("stmts", string_of_int (List.length program)) ])
    (fun () ->
      let ctx = { diags = []; steps = 0 } in
      let _final = exec_block ctx State.empty program in
      let diags = List.rev ctx.diags in
      if Tel.is_enabled () then begin
        Tel.count "gp_lint_programs_total" 1;
        Tel.count "gp_lint_symbolic_steps_total" ctx.steps;
        List.iter
          (fun d ->
            let sev =
              match d.d_severity with
              | Error -> "error"
              | Warning -> "warning"
              | Suggestion -> "suggestion"
            in
            Tel.count
              ~labels:[ ("severity", sev) ]
              "gp_lint_diagnostics_total" 1)
          diags;
        Tel.attr "symbolic_steps" (string_of_int ctx.steps);
        Tel.attr "diagnostics" (string_of_int (List.length diags))
      end;
      diags)

let errors ds = List.filter (fun d -> d.d_severity = Error) ds
let warnings ds = List.filter (fun d -> d.d_severity = Warning) ds
let suggestions ds = List.filter (fun d -> d.d_severity = Suggestion) ds

let pp_report ppf ds =
  if ds = [] then Fmt.string ppf "no diagnostics: program is clean"
  else Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_diagnostic) ds
