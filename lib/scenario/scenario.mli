(** The scenario catalog: named, seeded cluster experiments.

    A scenario bundles a workload, an open-loop {!Arrivals} process, a
    {!Gp_cluster.Cluster.config} (overload control, hot-key promotion,
    elastic membership), and a set of declared expectations — fairness
    floors, movement bounds, promotion requirements. {!run} executes it
    and reduces the cluster result to one {!outcome}; an empty
    [o_violations] means every declared expectation held.

    Everything is simulated time: a (scenario, seed, quick) triple
    replays bit-identically, which is what the committed bench gates
    diff against. *)

type t
(** A catalog entry. *)

val name : t -> string
val summary : t -> string
(** One-line description, shown by [gp scenario list]. *)

val catalog : t list
(** [steady], [diurnal], [hotkey_flood], [stampede], [elastic],
    [tenants], and the headline [million]. *)

val find : string -> t option

(** Per-tenant service accounting for multi-tenant scenarios. *)
type tenant_stat = {
  tn_name : string;
  tn_requests : int;
  tn_served : int;  (** completed with a real (non-shed) verdict *)
  tn_shed : int;
  tn_ratio : float;  (** served / requests *)
  tn_floor : float;  (** the scenario's declared minimum for [tn_ratio] *)
}

(** What a scenario run reduces to. Latencies are simulated units over
    served (non-shed) records. *)
type outcome = {
  o_name : string;
  o_replicas : int;
  o_requests : int;
  o_completed : int;  (** includes typed shed verdicts — never a hang *)
  o_shed : int;
  o_shed_ratio : float;
  o_peak_queue : int;  (** bounded-queue high-water mark *)
  o_p50 : float;
  o_p99 : float;
  o_max : float;
  o_hit_ratio : float;
  o_promotions : int;
  o_promoted : string list;
  o_joined : int;
  o_left : int;
  o_handoffs : int;
  o_moved : int;  (** keys whose shard owner changed across the schedule *)
  o_moved_bound : int;  (** the minimal-movement allowance *)
  o_tenants : tenant_stat list;
  o_violations : string list;
      (** unmet declared expectations; empty = the scenario passed *)
  o_audit : Gp_cluster.Cluster.audit option;  (** when run with [~audit] *)
  o_result : Gp_cluster.Cluster.result;  (** the full cluster result *)
}

val ok : outcome -> bool
(** No violations (audit failures, when audited, are violations too). *)

val run :
  ?quick:bool ->
  ?seed:int ->
  ?audit:bool ->
  declare_standard:(Gp_concepts.Registry.t -> unit) ->
  t ->
  outcome
(** Execute the scenario. [quick] (default false) scales the workload
    down ~8x for smoke runs — same shape, same checks. [audit] (default
    false) additionally replays every served answer on a single node
    and diffs fingerprints; shed verdicts are excluded from the diff by
    construction and counted in [au_shed]. Deterministic per (scenario,
    seed, quick). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The per-scenario report: completion, shedding, latency percentiles,
    promotions, elasticity, tenant floors, audit, and a final
    PASS/FAIL line. *)

(** {2 The flood contrast arm}

    The hot-key flood's pieces, exposed so bench s10 can run the same
    experiment twice — promotion on and off — and report the p99 and
    miss-ratio deltas as the mitigation's measured win. *)

val flood_n : quick:bool -> int
val flood_reqs : seed:int -> int -> Gp_service.Request.t array

val flood_config :
  quick:bool -> seed:int -> promote:bool -> int -> Gp_cluster.Cluster.config
(** [~promote:false] zeroes the hot-key detector and changes nothing
    else — the control arm. *)
