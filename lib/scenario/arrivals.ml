(* Deterministic open-loop arrival processes over the simulated clock.
   Every generator is seeded and pure: equal arguments give equal
   arrays, bit for bit, which is what lets scenario runs and their
   committed bench gates replay exactly.

   All times are absolute simulated instants, strictly increasing and
   positive. The minimum gap is well above the engine's 1e-9 timer
   floor so chained Arrive timers never collapse onto one instant. *)

let min_gap = 1e-6

type t = float array

let check_args ~fn n =
  if n < 0 then invalid_arg (Printf.sprintf "Arrivals.%s: n < 0" fn)

let check_rate ~fn name r =
  if r <= 0.0 then
    invalid_arg (Printf.sprintf "Arrivals.%s: %s must be positive" fn name)

let uniform ?(start = 1.0) ~interval n =
  check_args ~fn:"uniform" n;
  check_rate ~fn:"uniform" "interval" interval;
  if start <= 0.0 then invalid_arg "Arrivals.uniform: start must be positive";
  Array.init n (fun i -> start +. (float_of_int i *. interval))

(* Exponential gap at the current rate; [1.0 -. u] keeps log away from
   zero. The gap floor keeps the sequence strictly increasing. *)
let exp_gap st rate =
  let u = Random.State.float st 1.0 in
  Float.max min_gap (-.log (1.0 -. u) /. rate)

let homogeneous ~fn ?(start = 1.0) ~seed ~salt n rate_at =
  check_args ~fn n;
  if start <= 0.0 then
    invalid_arg (Printf.sprintf "Arrivals.%s: start must be positive" fn);
  let st = Random.State.make [| seed; salt |] in
  let t = ref start in
  Array.init n (fun i ->
      if i > 0 then t := !t +. exp_gap st (rate_at !t);
      !t)

let poisson ?start ~seed ~rate n =
  check_rate ~fn:"poisson" "rate" rate;
  homogeneous ~fn:"poisson" ?start ~seed ~salt:0x9015 n (fun _ -> rate)

let diurnal ?start ~seed ~base_rate ~peak_rate ~period n =
  check_rate ~fn:"diurnal" "base_rate" base_rate;
  check_rate ~fn:"diurnal" "period" period;
  if peak_rate < base_rate then
    invalid_arg "Arrivals.diurnal: peak_rate < base_rate";
  (* inhomogeneous Poisson with a raised-cosine day: the rate swings
     from base (midnight) to peak (midday) once per period *)
  let rate_at t =
    let phase = 2.0 *. Float.pi *. t /. period in
    base_rate +. ((peak_rate -. base_rate) *. 0.5 *. (1.0 -. cos phase))
  in
  homogeneous ~fn:"diurnal" ?start ~seed ~salt:0xd107 n rate_at

let burst ?start ~seed ~rate ~burst_rate ~burst_from ~burst_until n =
  check_rate ~fn:"burst" "rate" rate;
  check_rate ~fn:"burst" "burst_rate" burst_rate;
  if burst_until <= burst_from then
    invalid_arg "Arrivals.burst: empty burst window";
  let rate_at t =
    if t >= burst_from && t < burst_until then burst_rate else rate
  in
  homogeneous ~fn:"burst" ?start ~seed ~salt:0xb025 n rate_at

let is_valid a =
  let ok = ref (Array.length a = 0 || a.(0) > 0.0) in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

(* K-way merge by time, tenant index breaking ties (deterministic).
   Collisions across tenants are nudged forward so the merged clock is
   strictly increasing — the interleave is what matters, not the
   sub-microsecond instant. *)
let merge tenants =
  let tenants = Array.of_list tenants in
  let k = Array.length tenants in
  let cursors = Array.make k 0 in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 tenants in
  let out = Array.make total (0, 0.0) in
  let prev = ref 0.0 in
  for slot = 0 to total - 1 do
    let best = ref (-1) in
    for ti = k - 1 downto 0 do
      if cursors.(ti) < Array.length tenants.(ti) then
        let t = tenants.(ti).(cursors.(ti)) in
        if !best < 0 || t < tenants.(!best).(cursors.(!best)) then best := ti
    done;
    let ti = !best in
    let t = tenants.(ti).(cursors.(ti)) in
    cursors.(ti) <- cursors.(ti) + 1;
    let t = if t <= !prev then !prev +. min_gap else t in
    prev := t;
    out.(slot) <- (ti, t)
  done;
  out

let times tagged = Array.map snd tagged
let tenant_of tagged rid = fst tagged.(rid)
