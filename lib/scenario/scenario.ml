(* The scenario catalog: named, seeded cluster experiments — each one a
   workload + arrival process + cluster configuration + a set of
   declared expectations, run through Gp_cluster and reduced to one
   outcome record. Everything is simulated time, so a (scenario, seed,
   quick) triple replays bit-identically; the bench gates rely on it. *)

module Cluster = Gp_cluster.Cluster
module Node = Gp_cluster.Node
module Request = Gp_service.Request
module Workload = Gp_service.Workload
module Fleet = Gp_tracing.Fleet

type spec = {
  sp_config : Cluster.config;
  sp_reqs : Request.t array;
  sp_tenant_names : string array;
  sp_tenant_of : int -> int;
  sp_floors : float array;
      (* per-tenant served-ratio floor, same order as sp_tenant_names *)
  sp_checks : Cluster.result -> string list;
}

type t = {
  name : string;
  summary : string;
  build : quick:bool -> seed:int -> spec;
}

let name t = t.name
let summary t = t.summary

type tenant_stat = {
  tn_name : string;
  tn_requests : int;
  tn_served : int;
  tn_shed : int;
  tn_ratio : float;
  tn_floor : float;
}

type outcome = {
  o_name : string;
  o_replicas : int;
  o_requests : int;
  o_completed : int;
  o_shed : int;
  o_shed_ratio : float;
  o_peak_queue : int;
  o_p50 : float;
  o_p99 : float;
  o_max : float;
  o_hit_ratio : float;
  o_promotions : int;
  o_promoted : string list;
  o_joined : int;
  o_left : int;
  o_handoffs : int;
  o_moved : int;
  o_moved_bound : int;
  o_tenants : tenant_stat list;
  o_violations : string list;
  o_audit : Cluster.audit option;
  o_result : Cluster.result;
}

let ok o = o.o_violations = []

(* ---------------------------------------------------------------- *)
(* Workload helpers                                                  *)
(* ---------------------------------------------------------------- *)

let reqs ?mix ?zipf ?keyspace ~seed n =
  Array.of_list (Workload.generate ?mix ?zipf ?keyspace ~seed ~n ())

(* Tile a small request pool into a long stream with a quadratic hot
   bias (u² pushes picks toward the pool head). The pool holds the only
   distinct values — a million-request array is a million pointers. *)
let tiled ~seed ~pool n =
  let st = Random.State.make [| seed; 0x71ed |] in
  let m = Array.length pool in
  Array.init n (fun _ ->
      let u = Random.State.float st 1.0 in
      pool.(min (m - 1) (int_of_float (float_of_int m *. u *. u))))

let no_tenants = ([||], (fun _ -> 0), [||])

let base_spec ~config ~reqs ?(tenants = no_tenants) ?(checks = fun _ -> [])
    () =
  let names, of_, floors = tenants in
  {
    sp_config = config;
    sp_reqs = reqs;
    sp_tenant_names = names;
    sp_tenant_of = of_;
    sp_floors = floors;
    sp_checks = checks;
  }

let scale ~quick full = if quick then max 1 (full / 8) else full

(* ---------------------------------------------------------------- *)
(* The catalog                                                       *)
(* ---------------------------------------------------------------- *)

(* A read-heavy mix for the scale scenarios: writes replicate to all 32
   replicas, so their share is what sets the fan-out bill — 0.5% writes
   is ~150k replicated serves at a million requests. *)
let read_heavy_mix =
  [ (Request.Kclosure, 60); (Request.Klint, 50); (Request.Kcheck, 40);
    (Request.Koptimize, 25); (Request.Kprove, 24); (Request.Kparse, 1) ]

let steady =
  {
    name = "steady";
    summary =
      "Poisson arrivals well under capacity on 8 replicas: the null \
       hypothesis — nothing sheds, nothing is promoted";
    build =
      (fun ~quick ~seed ->
        let n = scale ~quick 2000 in
        let config =
          { Cluster.default_config with
            replicas = 8;
            seed;
            tuning =
              { Node.default_tuning with
                service_time = 0.2;
                service_time_hit = 0.02 };
            arrivals = Some (Arrivals.poisson ~seed ~rate:4.0 n) }
        in
        let checks r =
          if Cluster.shed_total r > 0 then
            [ Printf.sprintf "steady load shed %d requests"
                (Cluster.shed_total r) ]
          else []
        in
        base_spec ~config ~reqs:(reqs ~seed n) ~checks ());
  }

let diurnal =
  {
    name = "diurnal";
    summary =
      "a raised-cosine day on 6 replicas: the peak rate is 9x the \
       trough and the cluster must ride it out without shedding";
    build =
      (fun ~quick ~seed ->
        let n = scale ~quick 2000 in
        let config =
          { Cluster.default_config with
            replicas = 6;
            seed;
            tuning =
              { Node.default_tuning with
                service_time = 0.2;
                service_time_hit = 0.02 };
            arrivals =
              Some
                (Arrivals.diurnal ~seed ~base_rate:1.0 ~peak_rate:9.0
                   ~period:250.0 n) }
        in
        base_spec ~config ~reqs:(reqs ~seed n) ());
  }

(* The flood workload: closure queries only (memoized in the closures
   LRU), a steep zipf head over 60 keys, arrivals that jump to flood
   rate at t=50. The replica caches are deliberately tiny (2 entries
   against the ~6.7 keys each of the 9 replicas owns), so a key stays
   warm only where it is served steadily. Unmitigated, the hot key's
   owner saturates on hits alone, dispatches time out, and retries
   scatter the hot key across the whole ring — each scattered visit
   lands on a cache that has already evicted it, so it re-serves at
   full cost, squeezes that replica's own keys out of the LRU, and
   feeds the backlog. Promoting the head keys onto a two-successor
   rotation serves them from caches they never leave and keeps the
   pollution off the other seven replicas — promotion wins BOTH p99
   and miss ratio, which bench s10 measures by running this config
   twice. The balance is deliberate and tight: a wider spread thrashes
   the successors' two LRU slots with each other's promoted keys, a
   narrower one saturates the pair, and a promote-after threshold
   under the space-saving table's inherited floor (tail traffic /
   slots) would promote junk. *)
let flood_config ~quick ~seed ~promote n =
  { Cluster.default_config with
    replicas = 9;
    seed;
    trace = true;
    server_config =
      { Cluster.default_config.server_config with
        Gp_service.Server.cache_capacity = 2 };
    tuning =
      { Node.default_tuning with
        service_time = 0.6;
        service_time_hit = 0.12;
        hot_capacity = (if promote then 8 else 0);
        hot_promote_after =
          (if not promote then 0 else if quick then 45 else 300);
        hot_spread = 2 };
    arrivals =
      Some
        (Arrivals.burst ~seed ~rate:2.0 ~burst_rate:30.0 ~burst_from:50.0
           ~burst_until:1.0e6 n) }

let flood_reqs ~seed n =
  reqs ~mix:[ (Request.Kclosure, 1) ] ~zipf:1.7 ~keyspace:60 ~seed n

let flood_n ~quick = scale ~quick 4000

let hotkey_flood =
  {
    name = "hotkey_flood";
    summary =
      "a sustained flood on a zipf-headed 60-key space: the \
       space-saving detector must promote the hot key to replicated \
       reads, corroborated by the fleet hot-key signal";
    build =
      (fun ~quick ~seed ->
        let n = flood_n ~quick in
        let config = flood_config ~quick ~seed ~promote:true n in
        (* Corroboration runs both ways, but against different bars:
           the fleet flags a key hot only when it drew >= 2x the mean
           dispatch traffic — a bar the retry storm around the top key
           inflates — so every fleet-hot key must have been promoted,
           while of the promoted keys only the FIRST (the detector's
           earliest, hottest find) must clear the fleet bar. *)
        let checks r =
          let v = ref [] in
          if r.Cluster.r_promotions = 0 then
            v := "flood promoted no hot keys" :: !v;
          (match Fleet.merged r with
           | None -> v := "traced run produced no fleet metrics" :: !v
           | Some m ->
             let signal = List.map fst (Fleet.hot_keys m) in
             List.iter
               (fun k ->
                 if not (List.mem k r.Cluster.r_promoted_keys) then
                   v :=
                     Printf.sprintf
                       "fleet-hot key %S was never promoted" k
                     :: !v)
               signal;
             match r.Cluster.r_promoted_keys with
             | first :: _ when not (List.mem first signal) ->
               v :=
                 Printf.sprintf
                   "first promoted key %S absent from the fleet \
                    hot-key signal"
                   first
                 :: !v
             | _ -> ());
          List.rev !v
        in
        base_spec ~config ~reqs:(flood_reqs ~seed n) ~checks ());
  }

let stampede =
  {
    name = "stampede";
    summary =
      "cache stampede: definitions load slowly, then a read flood hits \
       the same few keys — memoization must coalesce the herd";
    build =
      (fun ~quick ~seed ->
        let n_w = if quick then 6 else 12 in
        let n_r = scale ~quick 2000 in
        let writes =
          reqs ~mix:[ (Request.Kparse, 1) ] ~keyspace:4 ~seed n_w
        in
        let reads =
          reqs
            ~mix:[ (Request.Kcheck, 3); (Request.Koptimize, 2) ]
            ~zipf:2.0 ~keyspace:6 ~seed:(seed + 1) n_r
        in
        let arr_w = Arrivals.uniform ~start:1.0 ~interval:2.0 n_w in
        let arr_r = Arrivals.poisson ~start:30.0 ~seed ~rate:40.0 n_r in
        let config =
          { Cluster.default_config with
            replicas = 6;
            seed;
            tuning =
              { Node.default_tuning with
                service_time = 1.0;
                service_time_hit = 0.02 };
            arrivals = Some (Array.append arr_w arr_r) }
        in
        let checks r =
          let miss = 1.0 -. Cluster.hit_ratio r in
          if miss > 0.5 then
            [ Printf.sprintf
                "stampede was not coalesced: miss ratio %.2f > 0.50" miss ]
          else []
        in
        base_spec ~config ~reqs:(Array.append writes reads) ~checks ());
  }

let elastic =
  {
    name = "elastic";
    summary =
      "mid-run membership: two replicas join under load, one retires — \
       key movement must stay within the minimal-movement bound";
    build =
      (fun ~quick ~seed ->
        let n = scale ~quick 2400 in
        let at i = if quick then float_of_int (20 * i) else float_of_int (130 * i) in
        let config =
          { Cluster.default_config with
            replicas = 4;
            seed;
            tuning =
              { Node.default_tuning with
                service_time = 0.1;
                service_time_hit = 0.01 };
            arrivals = Some (Arrivals.poisson ~seed ~rate:3.0 n);
            elastic =
              [ { Node.el_at = at 1; el_join = true; el_replica = 5 };
                { Node.el_at = at 2; el_join = true; el_replica = 6 };
                { Node.el_at = at 3; el_join = false; el_replica = 1 } ] }
        in
        let checks r =
          let v = ref [] in
          if r.Cluster.r_joined <> 2 then
            v := Printf.sprintf "joined %d of 2" r.Cluster.r_joined :: !v;
          if r.Cluster.r_left <> 1 then
            v := Printf.sprintf "left %d of 1" r.Cluster.r_left :: !v;
          if r.Cluster.r_moved_keys > r.Cluster.r_moved_bound then
            v :=
              Printf.sprintf "moved %d keys, minimal-movement bound %d"
                r.Cluster.r_moved_keys r.Cluster.r_moved_bound
              :: !v;
          if r.Cluster.r_handoffs = 0 then
            v := "join performed no state handoff" :: !v;
          List.rev !v
        in
        base_spec ~config ~reqs:(reqs ~seed n) ~checks ());
  }

let tenants =
  {
    name = "tenants";
    summary =
      "three tenants share 6 replicas behind a bounded queue; tenant c \
       floods, the door sheds — and no tenant may fall below its \
       declared service floor";
    build =
      (fun ~quick ~seed ->
        let n_ab = scale ~quick 600 in
        let n_c = scale ~quick 1200 in
        let a = Arrivals.poisson ~seed ~rate:1.5 n_ab in
        let b = Arrivals.poisson ~seed:(seed + 1) ~rate:1.5 n_ab in
        let c =
          Arrivals.burst ~seed:(seed + 2) ~rate:1.0 ~burst_rate:30.0
            ~burst_from:80.0 ~burst_until:120.0 n_c
        in
        let tagged = Arrivals.merge [ a; b; c ] in
        let per_tenant =
          [| reqs ~seed n_ab;
             reqs ~seed:(seed + 1) n_ab;
             reqs ~zipf:1.6 ~keyspace:12 ~seed:(seed + 2) n_c |]
        in
        let cursors = Array.make 3 0 in
        let stream =
          Array.map
            (fun (ti, _) ->
              let i = cursors.(ti) in
              cursors.(ti) <- i + 1;
              per_tenant.(ti).(i))
            tagged
        in
        let config =
          { Cluster.default_config with
            replicas = 6;
            seed;
            tuning =
              { Node.default_tuning with
                service_time = 0.3;
                service_time_hit = 0.03;
                queue_bound = 48;
                shed_backlog = 6.0 };
            arrivals = Some (Arrivals.times tagged) }
        in
        let checks r =
          if Cluster.shed_total r = 0 then
            [ "the flood was absorbed without shedding — the bounded \
               queue never engaged" ]
          else []
        in
        base_spec ~config ~reqs:stream
          ~tenants:
            ( [| "a"; "b"; "c" |],
              Arrivals.tenant_of tagged,
              [| 0.85; 0.85; 0.25 |] )
          ~checks ());
  }

let million =
  {
    name = "million";
    summary =
      "the headline: a million open-loop requests across 32 replicas, \
       every answer audited against a single-node replay";
    build =
      (fun ~quick ~seed ->
        let n = if quick then 20_000 else 1_000_000 in
        let pool =
          reqs ~mix:read_heavy_mix ~seed (if quick then 500 else 3000)
        in
        let config =
          { Cluster.default_config with
            replicas = 32;
            seed;
            max_time = 1.0e6;
            max_events = 60_000_000;
            arrivals = Some (Arrivals.poisson ~seed ~rate:50.0 n) }
        in
        let checks r =
          if Cluster.shed_total r > 0 then
            [ Printf.sprintf "unexpected shed at scale: %d"
                (Cluster.shed_total r) ]
          else []
        in
        base_spec ~config ~reqs:(tiled ~seed ~pool n) ~checks ());
  }

let catalog =
  [ steady; diurnal; hotkey_flood; stampede; elastic; tenants; million ]

let find n = List.find_opt (fun t -> String.equal t.name n) catalog

(* ---------------------------------------------------------------- *)
(* Running                                                           *)
(* ---------------------------------------------------------------- *)

let tenant_stats spec r =
  let k = Array.length spec.sp_tenant_names in
  if k = 0 then []
  else begin
    let total = Array.make k 0 and served = Array.make k 0 in
    let shed = Array.make k 0 in
    Array.iteri
      (fun rid rc ->
        let ti = spec.sp_tenant_of rid in
        total.(ti) <- total.(ti) + 1;
        match rc with
        | Some rc when rc.Node.rc_shed -> shed.(ti) <- shed.(ti) + 1
        | Some _ -> served.(ti) <- served.(ti) + 1
        | None -> ())
      r.Cluster.r_records;
    List.init k (fun ti ->
        {
          tn_name = spec.sp_tenant_names.(ti);
          tn_requests = total.(ti);
          tn_served = served.(ti);
          tn_shed = shed.(ti);
          tn_ratio =
            (if total.(ti) = 0 then 1.0
             else float_of_int served.(ti) /. float_of_int total.(ti));
          tn_floor = spec.sp_floors.(ti);
        })
  end

let run ?(quick = false) ?(seed = 1) ?(audit = false) ~declare_standard t =
  let spec = t.build ~quick ~seed in
  let r = Cluster.run ~config:spec.sp_config ~declare_standard spec.sp_reqs in
  let au = if audit then Some (Cluster.audit ~declare_standard r) else None in
  let stats = tenant_stats spec r in
  let violations =
    (if r.Cluster.r_completed <> Array.length spec.sp_reqs then
       [ Printf.sprintf "completed %d of %d requests" r.Cluster.r_completed
           (Array.length spec.sp_reqs) ]
     else [])
    @ List.concat_map
        (fun tn ->
          if tn.tn_ratio < tn.tn_floor then
            [ Printf.sprintf
                "tenant %s served %.2f, below its declared floor %.2f"
                tn.tn_name tn.tn_ratio tn.tn_floor ]
          else [])
        stats
    @ spec.sp_checks r
    @ (match au with
       | Some a when not (Cluster.audit_ok a) ->
         [ Printf.sprintf "audit failed: %d missing, %d divergent"
             a.Cluster.au_missing
             (List.length a.Cluster.au_divergences) ]
       | _ -> [])
  in
  {
    o_name = t.name;
    o_replicas = spec.sp_config.Cluster.replicas;
    o_requests = Array.length spec.sp_reqs;
    o_completed = r.Cluster.r_completed;
    o_shed = Cluster.shed_total r;
    o_shed_ratio = Cluster.shed_ratio r;
    o_peak_queue = r.Cluster.r_peak_inflight;
    o_p50 = Cluster.latency_percentile r 0.5;
    o_p99 = Cluster.latency_percentile r 0.99;
    o_max = Cluster.max_latency r;
    o_hit_ratio = Cluster.hit_ratio r;
    o_promotions = r.Cluster.r_promotions;
    o_promoted = r.Cluster.r_promoted_keys;
    o_joined = r.Cluster.r_joined;
    o_left = r.Cluster.r_left;
    o_handoffs = r.Cluster.r_handoffs;
    o_moved = r.Cluster.r_moved_keys;
    o_moved_bound = r.Cluster.r_moved_bound;
    o_tenants = stats;
    o_violations = violations;
    o_audit = au;
    o_result = r;
  }

let pp_outcome ppf o =
  Fmt.pf ppf "scenario %s: %d requests over %d replicas@." o.o_name
    o.o_requests o.o_replicas;
  Fmt.pf ppf
    "  completed %d, shed %d (%.2f%%), peak queue %d@."
    o.o_completed o.o_shed
    (100.0 *. o.o_shed_ratio)
    o.o_peak_queue;
  Fmt.pf ppf "  latency (sim): p50 %.2f, p99 %.2f, max %.2f; hits %.1f%%@."
    o.o_p50 o.o_p99 o.o_max
    (100.0 *. o.o_hit_ratio);
  if o.o_promotions > 0 then
    Fmt.pf ppf "  hot keys promoted: %d (%s)@." o.o_promotions
      (String.concat ", " o.o_promoted);
  if o.o_joined + o.o_left > 0 then
    Fmt.pf ppf
      "  elastic: %d joined, %d left, %d handoffs; moved %d keys (bound \
       %d)@."
      o.o_joined o.o_left o.o_handoffs o.o_moved o.o_moved_bound;
  List.iter
    (fun tn ->
      Fmt.pf ppf
        "  tenant %s: %d requests, served %.2f (floor %.2f), shed %d@."
        tn.tn_name tn.tn_requests tn.tn_ratio tn.tn_floor tn.tn_shed)
    o.o_tenants;
  (match o.o_audit with
   | None -> ()
   | Some a ->
     Fmt.pf ppf "  audit: %d compared, %d missing, %d shed, %d divergent@."
       a.Cluster.au_compared a.Cluster.au_missing a.Cluster.au_shed
       (List.length a.Cluster.au_divergences));
  match o.o_violations with
  | [] -> Fmt.pf ppf "  PASS@."
  | vs ->
    List.iter (fun v -> Fmt.pf ppf "  VIOLATION: %s@." v) vs;
    Fmt.pf ppf "  FAIL@."
