(** Deterministic open-loop arrival processes over the simulated clock.

    Closed-loop load (send, wait, send) hides overload: the clients
    slow down with the system and the queue never shows. These
    generators are open-loop — arrival instants are fixed in advance,
    independent of how the cluster is coping — which is what makes
    load shedding and back-pressure observable in a scenario.

    Everything is seeded and pure: equal arguments produce equal
    arrays, bit for bit. All times are absolute simulated instants,
    strictly increasing, positive, and spaced at least 1e-6 apart
    (comfortably above the engine's 1e-9 timer floor). Feed the result
    to [Cluster.config.arrivals]. *)

type t = float array
(** Absolute arrival instants, strictly increasing. *)

val uniform : ?start:float -> interval:float -> int -> t
(** The classic fixed cadence: [start + i * interval]. [start] defaults
    to 1.0. Raises [Invalid_argument] on a non-positive [interval] or
    [start], or negative [n]. *)

val poisson : ?start:float -> seed:int -> rate:float -> int -> t
(** Homogeneous Poisson process: exponential gaps at [rate] arrivals
    per simulated time unit. *)

val diurnal :
  ?start:float ->
  seed:int ->
  base_rate:float ->
  peak_rate:float ->
  period:float ->
  int ->
  t
(** Inhomogeneous Poisson with a raised-cosine day: the rate swings
    from [base_rate] (midnight) up to [peak_rate] (midday) and back
    once per [period]. Raises [Invalid_argument] if
    [peak_rate < base_rate]. *)

val burst :
  ?start:float ->
  seed:int ->
  rate:float ->
  burst_rate:float ->
  burst_from:float ->
  burst_until:float ->
  int ->
  t
(** Poisson at [rate], except inside [[burst_from, burst_until)] where
    it floods at [burst_rate] — the hot-key-flood and stampede arm. *)

val is_valid : t -> bool
(** Strictly increasing and positive — what every generator guarantees
    and [merge] preserves; exposed for the property tests. *)

val merge : t list -> (int * float) array
(** Interleave per-tenant processes into one cluster arrival clock:
    [(tenant index, time)] sorted by time, tenant index breaking ties.
    Cross-tenant collisions are nudged forward by the minimum gap, so
    the merged times are strictly increasing. *)

val times : (int * float) array -> t
(** The merged clock without the tenant tags — what the cluster config
    takes. *)

val tenant_of : (int * float) array -> int -> int
(** Which tenant the [rid]-th merged arrival belongs to. *)
