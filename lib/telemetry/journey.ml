(* Cross-node trace assembly: take one completed-span list per node (the
   per-node rings collected after a cluster run), group spans by the
   "trace" attribute stamped at emission, and rebuild each trace's
   causal tree. Span ids are cluster-global (one counter), so a parent
   reference resolves across node boundaries; simulated time is globally
   consistent, so interval checks are meaningful across nodes.

   Orphans — spans whose parent id never got recorded, e.g. because the
   message that would have closed the parent was dropped — are surfaced
   on the journey, never silently attached to a root. *)

type tree = { t_node : int; t_span : Trace.span; t_children : tree list }

type journey = {
  j_trace : int;
  j_roots : tree list; (* parentless spans' trees, start order *)
  j_orphans : (int * Trace.span) list; (* (node, span) with missing parent *)
  j_spans : int; (* total spans in the trace *)
}

let trace_attr sp =
  match List.assoc_opt "trace" sp.Trace.sp_attrs with
  | Some s -> int_of_string_opt s
  | None -> None

(* Children sort by (start, id): id breaks ties deterministically for
   zero-duration spans emitted at the same simulated instant. *)
let span_order (_, a) (_, b) =
  let c = Float.compare a.Trace.sp_start_ns b.Trace.sp_start_ns in
  if c <> 0 then c else Int.compare a.Trace.sp_id b.Trace.sp_id

let assemble lanes =
  let by_trace : (int, (int * Trace.span) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let trace_order = ref [] in
  List.iter
    (fun (node, sps) ->
      List.iter
        (fun sp ->
          match trace_attr sp with
          | None -> ()
          | Some tid ->
            let cell =
              match Hashtbl.find_opt by_trace tid with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.add by_trace tid c;
                trace_order := tid :: !trace_order;
                c
            in
            cell := (node, sp) :: !cell)
        sps)
    lanes;
  let assemble_one tid =
    let entries = List.rev !(Hashtbl.find by_trace tid) in
    let present = Hashtbl.create 16 in
    List.iter
      (fun (_, sp) -> Hashtbl.replace present sp.Trace.sp_id ())
      entries;
    let kids = Hashtbl.create 16 in
    List.iter
      (fun ((_, sp) as e) ->
        match sp.Trace.sp_parent with
        | Some p when Hashtbl.mem present p ->
          Hashtbl.replace kids p
            (e :: (try Hashtbl.find kids p with Not_found -> []))
        | _ -> ())
      entries;
    let children p =
      (try List.rev (Hashtbl.find kids p) with Not_found -> [])
      |> List.sort span_order
    in
    let rec build (node, sp) =
      { t_node = node;
        t_span = sp;
        t_children = List.map build (children sp.Trace.sp_id) }
    in
    let roots =
      List.filter (fun (_, sp) -> sp.Trace.sp_parent = None) entries
      |> List.sort span_order
    in
    let orphans =
      List.filter
        (fun (_, sp) ->
          match sp.Trace.sp_parent with
          | None -> false
          | Some p -> not (Hashtbl.mem present p))
        entries
      |> List.sort span_order
    in
    { j_trace = tid;
      j_roots = List.map build roots;
      j_orphans = orphans;
      j_spans = List.length entries }
  in
  List.rev_map assemble_one !trace_order
  |> List.sort (fun a b -> Int.compare a.j_trace b.j_trace)

let find journeys tid = List.find_opt (fun j -> j.j_trace = tid) journeys

(* Well-formedness of an assembled journey:
   - exactly one root, and every parent resolved (no orphans);
   - child intervals respect causality: a child starts no earlier than
     its parent, and a SAME-NODE child is fully contained in its
     parent's interval. A cross-node child may legitimately outlive its
     parent — a serve delivered after the router already closed the
     attempt as retried, or a replicate fan-out parented under a
     zero-duration serve — so only the start bound applies there. *)
let well_formed j =
  let eps = 1e-6 in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () =
    match j.j_roots with
    | [ _ ] -> Ok ()
    | roots ->
      Error
        (Printf.sprintf "trace %d: %d roots (want exactly 1)" j.j_trace
           (List.length roots))
  in
  let* () =
    match j.j_orphans with
    | [] -> Ok ()
    | (node, sp) :: _ ->
      Error
        (Printf.sprintf
           "trace %d: %d orphaned span(s), first %S (id %d, node %d, \
            missing parent %d)"
           j.j_trace (List.length j.j_orphans) sp.Trace.sp_name
           sp.Trace.sp_id node
           (match sp.Trace.sp_parent with Some p -> p | None -> -1))
  in
  let rec check parent t =
    let sp = t.t_span in
    let* () =
      match parent with
      | None -> Ok ()
      | Some p ->
        let psp = p.t_span in
        if sp.Trace.sp_start_ns +. eps < psp.Trace.sp_start_ns then
          Error
            (Printf.sprintf
               "trace %d: span %d (%s) starts before its parent %d"
               j.j_trace sp.Trace.sp_id sp.Trace.sp_name psp.Trace.sp_id)
        else if
          t.t_node = p.t_node
          && sp.Trace.sp_start_ns +. sp.Trace.sp_dur_ns
             > psp.Trace.sp_start_ns +. psp.Trace.sp_dur_ns +. eps
        then
          Error
            (Printf.sprintf
               "trace %d: same-node span %d (%s) ends after its parent %d"
               j.j_trace sp.Trace.sp_id sp.Trace.sp_name psp.Trace.sp_id)
        else Ok ()
    in
    List.fold_left
      (fun acc c ->
        let* () = acc in
        check (Some t) c)
      (Ok ()) t.t_children
  in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      check None r)
    (Ok ()) j.j_roots

let root_name j =
  match j.j_roots with
  | { t_span; _ } :: _ -> Some t_span.Trace.sp_name
  | [] -> None
