(** Span tracing: nested timed regions in a bounded in-memory ring
    buffer, exported as Chrome trace-event JSON ([chrome://tracing] /
    Perfetto). Single-threaded: parenthood is the open-span stack.

    Spans record at close; once [capacity] is exceeded the oldest spans
    are overwritten and counted in {!dropped}. *)

type span = {
  sp_id : int;  (** unique per trace, from 1 *)
  sp_parent : int option;
  sp_name : string;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_attrs : (string * string) list;
  sp_gc : Profile.counters option;
      (** GC/allocation delta over the span, when {!Profile} was enabled
          at open. Process-global counters: a parent's delta includes
          its children's. *)
}

type t

val create : ?capacity:int -> clock:Clock.t -> unit -> t
(** Default capacity 4096 spans. Raises [Invalid_argument] when
    [capacity < 1]. *)

val with_span :
  t -> name:string -> ?attrs:(unit -> (string * string) list) ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a span. [attrs] is evaluated once, at close.
    If the thunk raises, the span is still recorded — tagged with
    [error=true] — and the exception propagates. *)

val add_attr : t -> string -> string -> unit
(** Attach an attribute to the innermost open span (no-op outside any
    span). Lets code record results computed mid-span. *)

val emit :
  t -> ?id:int -> ?parent:int -> name:string -> start_ns:float ->
  dur_ns:float -> ?attrs:(string * string) list -> unit -> int
(** Record an already-timed span directly, bypassing the open-span
    stack — for cross-event spans (the cluster's request/attempt spans
    stay open across many simulated deliveries) whose parent is chosen
    explicitly, e.g. from an inbound {!Context}. Returns the span id;
    when [id] is given it is used verbatim and the internal id counter
    is bumped past it. *)

val spans : t -> span list
(** Retained (up to capacity) completed spans, oldest first. *)

val recorded : t -> int
(** Total spans ever recorded. *)

val dropped : t -> int
(** Spans overwritten by the ring bound. *)

val mark : t -> int
(** A cursor into the record stream; see {!since}. *)

val since : t -> int -> span list
(** Spans recorded after the given {!mark} and still retained, oldest
    first — the per-request capture used by the slow-request log. *)

val clear : t -> unit

val to_chrome_json_lanes :
  ?dropped:int -> (int * string * span list) list -> string
(** Chrome trace-event JSON over explicit process lanes:
    [(pid, process_name, spans)] per lane. Each lane opens with a
    [ph:"M"] [process_name] metadata event, then one complete
    ([ph:"X"]) event per span with that lane's [pid]; ts/dur are
    microseconds, rebased to the earliest span across {e all} lanes so
    cross-lane ordering survives. The cluster exporter maps one node
    per lane. *)

val to_chrome_json : t -> string
(** {!to_chrome_json_lanes} with the single lane [(1, "gp", spans t)]:
    one complete ([ph:"X"]) event per retained span, ts/dur in
    microseconds (ts rebased to the earliest retained span),
    span/parent ids and attrs in [args]. *)

val pp_dur : Format.formatter -> float -> unit

val pp_tree : Format.formatter -> span list -> unit
(** Render spans as an indented forest (roots = spans whose parent is
    not in the list), with durations, GC deltas and attributes. *)

val folded : ?weight:[ `Dur | `Alloc ] -> span list -> string
(** Collapsed-stack ("folded") rendering for flamegraph tooling: one
    [root;child;leaf weight] line per span, weighted by the span's
    {e self} cost — duration in ns by default, or allocated bytes with
    [`Alloc] (0 for spans recorded without profiling). *)

val to_folded : ?weight:[ `Dur | `Alloc ] -> t -> string
(** {!folded} over the retained spans. *)

val span_to_json : span -> string
(** One span as a JSON object ([id], [parent], [name], [start_ns],
    [dur_ns], [attrs], [gc]) — the representation flight-recorder
    dossiers embed. *)
