(** Minimal JSON emission helpers shared by the exporters (emission
    only — parsing lives in the test suite's validator). *)

val escape : string -> string
(** Escape for inclusion inside a JSON string literal (no quotes). *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** A JSON number; [nan] and infinities become [null]. *)
