(** GC/allocation accounting for spans: a process-global probe over
    [Gc.allocated_bytes] and the minor/major collection counters.

    Off by default behind one flag check, like {!Tel} — the tracer
    samples it at span open/close, so enabling it turns every span into
    an allocation profile without touching instrumented code. *)

type counters = {
  pc_alloc_bytes : float;  (** bytes allocated (minor + major) *)
  pc_minor : int;  (** minor collections *)
  pc_major : int;  (** major collections *)
}

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val sample : unit -> counters option
(** Current process-global counters; [None] when disabled (the one-flag
    fast path — no [Gc.quick_stat] call is made). *)

val diff : before:counters -> after:counters -> counters
(** Per-span delta; allocation is clamped at 0. *)

val with_profiling : (unit -> 'a) -> 'a
(** Enable around the thunk, restoring the previous state
    (exception-safe). *)

val pp_bytes : Format.formatter -> float -> unit
(** Humanised byte count ([12.3kB]). *)
