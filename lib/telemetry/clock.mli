(** Injectable time source: a function returning nanoseconds since an
    arbitrary origin. All of gp_telemetry reads time through one of
    these, so tracing stays deterministic under test. *)

type t = unit -> float
(** Nanoseconds since an arbitrary origin. *)

val wall : t
(** Wall-clock time via [Unix.gettimeofday], in ns. *)

val frozen : float -> t
(** Always returns the given instant (spans get zero duration). *)

val manual : ?start:float -> step:float -> unit -> t
(** A deterministic clock that advances by exactly [step] ns on every
    read, starting at [start] (default 0). The first read returns
    [start], the second [start +. step], and so on. *)
