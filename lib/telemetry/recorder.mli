(** The flight recorder: a bounded ring of per-request {e dossiers} —
    the always-on black box that keeps enough context to explain and
    deterministically re-execute recent requests.

    Steady-state cost is O(1) per request (ring write plus an O(k)
    slowest-k probe); the heavyweight payload — full span tree, metric
    deltas — is retained only for {e interesting} requests: any
    non-["ok"] outcome (errors, over-budget, timeout) and the slowest-k
    seen so far. The recorder stores service-agnostic strings and spans;
    [gp_service] fills dossiers in and owns replay
    ([Gp_service.Flight]). *)

type dossier = {
  do_id : int;  (** the request id the server assigned *)
  do_kind : string;  (** request kind, or ["invalid"] *)
  do_wire : string Lazy.t;
      (** re-servable wire line; the raw input line when served from
          one (or when the request did not parse), a canonical
          serialization otherwise. Lazy — request serialization is a
          measurable per-request cost, and the line is only needed at
          export or replay time *)
  do_generation : int;  (** registry generation the request saw *)
  do_config : string;  (** canonical server-config line *)
  do_config_fp : string;  (** digest of [do_config] *)
  do_outcome : string;  (** ["ok"] or the error-code name *)
  do_detail : string;  (** error detail; [""] on ok *)
  do_cached : bool;
  do_steps : int;
  do_dur_ns : float;
      (** root-span duration; wall-clock when telemetry is off *)
  do_response_fp : string Lazy.t;
      (** digest of the canonical response (kind + result; ids, cache
          provenance and step accounting excluded) — what replay
          compares. Lazy, like [do_wire] *)
  do_cache_chain : (string * int * int) list;
      (** per-cache (name, hits, misses) deltas for this request *)
  do_spans : Trace.span list;  (** interesting requests only *)
  do_metric_deltas : (string * float) list;
      (** sink metric family total deltas; interesting requests only *)
}

type t

val create : ?capacity:int -> ?slowest:int -> unit -> t
(** Defaults: 512-dossier ring, slowest-k of 8. Raises
    [Invalid_argument] when [capacity < 1] or [slowest < 0]. *)

val record : t -> dossier -> unit
(** Record one dossier, stripping spans and metric deltas unless the
    outcome is non-ok or the duration ranks among the slowest-k. *)

val wants_payload : t -> ok:bool -> dur_ns:float -> bool
(** Would {!record} retain the heavyweight payload for a dossier with
    this outcome and duration? Lets the filler skip assembling spans
    and metric deltas that would only be stripped. *)

val dossiers : t -> dossier list
(** Retained dossiers, oldest first. *)

val capacity : t -> int

val recorded : t -> int
(** Total dossiers ever recorded. *)

val retained : t -> int

val dropped : t -> int
(** Dossiers overwritten by the ring bound. *)

val clear : t -> unit

val dossier_to_json : dossier -> string
(** One dossier as a single-line JSON object. *)

val to_jsonl : t -> string
(** Retained dossiers as JSONL (one {!dossier_to_json} line each),
    oldest first — the [gp serve --flight] dump and [gp replay] input
    format. *)

val pp_summary : Format.formatter -> t -> unit
