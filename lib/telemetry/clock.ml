(* Injectable time source. Everything in gp_telemetry reads time through
   one of these, so traces and latency metrics are exactly reproducible
   under test: install a [manual] clock and every span duration is a
   known constant. *)

type t = unit -> float (* nanoseconds since an arbitrary origin *)

let wall () = Unix.gettimeofday () *. 1e9

let frozen at () = at

let manual ?(start = 0.0) ~step () =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t
