(* Span tracing: nested regions timed by the injectable clock, kept in a
   bounded ring buffer (old spans are overwritten, never allocated
   past the capacity), exported as Chrome trace-event JSON.

   Spans close in LIFO order on one thread — the engine and the service
   are single-threaded — so parenthood is the open-span stack. A span is
   recorded at close time; an exception inside [with_span] still records
   the span (tagged error=true) and re-raises. *)

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_attrs : (string * string) list;
  sp_gc : Profile.counters option; (* Some iff profiling was on at open *)
}

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_start : float;
  o_gc : Profile.counters option;
  o_attrs : (unit -> (string * string) list) option;
  mutable o_extra : (string * string) list; (* add_attr, reverse order *)
}

type t = {
  clock : Clock.t;
  capacity : int;
  ring : span array; (* slot i holds recorded span (recorded-retained+i) *)
  mutable recorded : int; (* total spans ever recorded *)
  mutable next_id : int;
  mutable stack : open_span list;
}

let dummy =
  { sp_id = 0; sp_parent = None; sp_name = ""; sp_start_ns = 0.0;
    sp_dur_ns = 0.0; sp_attrs = []; sp_gc = None }

let create ?(capacity = 4096) ~clock () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  { clock; capacity; ring = Array.make capacity dummy; recorded = 0;
    next_id = 0; stack = [] }

let record t sp =
  t.ring.(t.recorded mod t.capacity) <- sp;
  t.recorded <- t.recorded + 1

let close t o ~error =
  let stop = t.clock () in
  let gc =
    match o.o_gc with
    | None -> None
    | Some before -> (
      match Profile.sample () with
      | Some after -> Some (Profile.diff ~before ~after)
      | None -> None (* profiling turned off mid-span *))
  in
  let attrs =
    (match o.o_attrs with Some f -> f () | None -> [])
    @ List.rev o.o_extra
    @ (if error then [ ("error", "true") ] else [])
  in
  record t
    { sp_id = o.o_id; sp_parent = o.o_parent; sp_name = o.o_name;
      sp_start_ns = o.o_start; sp_dur_ns = Float.max 0.0 (stop -. o.o_start);
      sp_attrs = attrs; sp_gc = gc }

let with_span t ~name ?attrs f =
  t.next_id <- t.next_id + 1;
  let o =
    { o_id = t.next_id;
      o_parent = (match t.stack with o :: _ -> Some o.o_id | [] -> None);
      o_name = name;
      o_start = t.clock ();
      o_gc = Profile.sample ();
      o_attrs = attrs;
      o_extra = [] }
  in
  t.stack <- o :: t.stack;
  let pop () = t.stack <- (match t.stack with _ :: rest -> rest | [] -> []) in
  match f () with
  | v ->
    pop ();
    close t o ~error:false;
    v
  | exception exn ->
    pop ();
    close t o ~error:true;
    raise exn

(* Record an already-timed span, bypassing the open-span stack. The
   cluster's cross-event spans (a request open across many simulated
   deliveries) can't close in LIFO order, so their owner times them and
   emits the finished interval with an explicit parent — and, usually,
   an explicit id drawn from a cluster-global counter so ids stay unique
   across every node's ring. [next_id] is bumped past explicit ids so
   stack spans never collide with emitted ones. *)
let emit t ?id ?parent ~name ~start_ns ~dur_ns ?(attrs = []) () =
  let id =
    match id with
    | Some i ->
      if i > t.next_id then t.next_id <- i;
      i
    | None ->
      t.next_id <- t.next_id + 1;
      t.next_id
  in
  record t
    { sp_id = id; sp_parent = parent; sp_name = name; sp_start_ns = start_ns;
      sp_dur_ns = Float.max 0.0 dur_ns; sp_attrs = attrs; sp_gc = None };
  id

let add_attr t key v =
  match t.stack with
  | o :: _ -> o.o_extra <- (key, v) :: o.o_extra
  | [] -> ()

let retained t = Int.min t.recorded t.capacity
let recorded t = t.recorded
let dropped t = Int.max 0 (t.recorded - t.capacity)

(* Retained spans, oldest first. *)
let spans t =
  let n = retained t in
  List.init n (fun i -> t.ring.((t.recorded - n + i) mod t.capacity))

(* [mark]/[since]: a cursor into the record stream, for per-request span
   capture (the service's slow-request log). *)
let mark t = t.recorded

let since t m =
  let n = retained t in
  let first = Int.max m (t.recorded - n) in
  List.init (t.recorded - first) (fun i ->
      t.ring.((first + i) mod t.capacity))

let clear t =
  t.recorded <- 0;
  t.stack <- []

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* One complete ("ph":"X") event per span; ts/dur are microseconds.
   Timestamps are rebased to the earliest span across all lanes — a wall
   clock's epoch nanoseconds would swamp the printer's precision and
   every ts would render identical. Nesting is inferred by the viewer
   from time containment; the span and parent ids also ride along in
   args.

   Each lane is one process ("pid") in the viewer, announced by a
   ph:"M" process_name metadata event — the cluster exporter maps one
   node per lane so cross-node journeys read as parallel swimlanes on
   the shared simulated clock. *)
let to_chrome_json_lanes ?(dropped = 0) lanes =
  let base =
    List.fold_left
      (fun m (_, _, sps) ->
        List.fold_left (fun m sp -> Float.min m sp.sp_start_ns) m sps)
      infinity lanes
  in
  let base = if Float.is_finite base then base else 0.0 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let comma () =
    if !first then first := false else Buffer.add_char buf ','
  in
  List.iter
    (fun (pid, pname, sps) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\
            \"args\":{\"name\":%s}}"
           pid (Json.str pname));
      List.iter
        (fun sp ->
          comma ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%s,\
                \"dur\":%s,\"args\":{"
               (Json.str sp.sp_name) pid
               (Json.num ((sp.sp_start_ns -. base) /. 1e3))
               (Json.num (sp.sp_dur_ns /. 1e3)));
          let args =
            [ ("span_id", string_of_int sp.sp_id) ]
            @ (match sp.sp_parent with
              | Some p -> [ ("parent_id", string_of_int p) ]
              | None -> [])
            @ (match sp.sp_gc with
              | Some g ->
                [ ("alloc_bytes",
                   Printf.sprintf "%.0f" g.Profile.pc_alloc_bytes);
                  ("minor_gcs", string_of_int g.Profile.pc_minor);
                  ("major_gcs", string_of_int g.Profile.pc_major) ]
              | None -> [])
            @ sp.sp_attrs
          in
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Json.str k ^ ":" ^ Json.str v))
            args;
          Buffer.add_string buf "}}")
        sps)
    lanes;
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ns\",\"droppedSpans\":%d}"
       dropped);
  Buffer.contents buf

let to_chrome_json t =
  to_chrome_json_lanes ~dropped:(dropped t) [ (1, "gp", spans t) ]

(* ------------------------------------------------------------------ *)
(* Span-tree rendering                                                 *)
(* ------------------------------------------------------------------ *)

let pp_dur ppf ns =
  if Float.is_nan ns then Fmt.string ppf "-"
  else if ns < 1e3 then Fmt.pf ppf "%.0fns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2fms" (ns /. 1e6)
  else Fmt.pf ppf "%.2fs" (ns /. 1e9)

(* Render a list of completed spans as an indented forest. Roots are
   spans whose parent is absent from the list (the list may be a window,
   e.g. one request's spans). *)
let pp_tree ppf sps =
  let present = List.map (fun s -> s.sp_id) sps in
  let children p =
    List.filter (fun s -> s.sp_parent = Some p) sps
    |> List.sort (fun a b -> Float.compare a.sp_start_ns b.sp_start_ns)
  in
  let roots =
    List.filter
      (fun s ->
        match s.sp_parent with
        | None -> true
        | Some p -> not (List.mem p present))
      sps
    |> List.sort (fun a b -> Float.compare a.sp_start_ns b.sp_start_ns)
  in
  let rec pp_span depth s =
    Fmt.pf ppf "%s%-*s %a" (String.make (2 * depth) ' ')
      (Int.max 1 (30 - (2 * depth)))
      s.sp_name pp_dur s.sp_dur_ns;
    (match s.sp_gc with
    | Some g ->
      Fmt.pf ppf " alloc=%a minor=%d major=%d" Profile.pp_bytes
        g.Profile.pc_alloc_bytes g.Profile.pc_minor g.Profile.pc_major
    | None -> ());
    List.iter (fun (k, v) -> Fmt.pf ppf " %s=%s" k v) s.sp_attrs;
    Fmt.pf ppf "@.";
    List.iter (pp_span (depth + 1)) (children s.sp_id)
  in
  List.iter (pp_span 0) roots

(* ------------------------------------------------------------------ *)
(* Collapsed-stack ("folded") export                                   *)
(* ------------------------------------------------------------------ *)

(* One "a;b;c weight" line per span, weighted by the span's SELF cost
   (total minus the children's totals) so flamegraph tooling can re-sum
   the hierarchy. Children are indexed by parent in one pass: the export
   runs over full rings, where pp_tree's quadratic scan would hurt. *)
let folded ?(weight = `Dur) sps =
  let weight_of s =
    match weight with
    | `Dur -> s.sp_dur_ns
    | `Alloc -> (
      match s.sp_gc with Some g -> g.Profile.pc_alloc_bytes | None -> 0.0)
  in
  let present = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace present s.sp_id ()) sps;
  let kids = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match s.sp_parent with
      | Some p when Hashtbl.mem present p ->
        Hashtbl.replace kids p
          (s :: (try Hashtbl.find kids p with Not_found -> []))
      | _ -> ())
    sps;
  let children p =
    (try List.rev (Hashtbl.find kids p) with Not_found -> [])
    |> List.sort (fun a b -> Float.compare a.sp_start_ns b.sp_start_ns)
  in
  let roots =
    List.filter
      (fun s ->
        match s.sp_parent with
        | None -> true
        | Some p -> not (Hashtbl.mem present p))
      sps
  in
  let buf = Buffer.create 4096 in
  let rec go stack s =
    let cs = children s.sp_id in
    let self =
      Float.max 0.0
        (weight_of s -. List.fold_left (fun a c -> a +. weight_of c) 0.0 cs)
    in
    let stack = if stack = "" then s.sp_name else stack ^ ";" ^ s.sp_name in
    Buffer.add_string buf (Printf.sprintf "%s %.0f\n" stack self);
    List.iter (go stack) cs
  in
  List.iter (go "") roots;
  Buffer.contents buf

let to_folded ?weight t = folded ?weight (spans t)

(* ------------------------------------------------------------------ *)
(* Per-span JSON (the flight recorder's dossier format)                *)
(* ------------------------------------------------------------------ *)

let span_to_json sp =
  let attrs =
    String.concat ","
      (List.map (fun (k, v) -> Json.str k ^ ":" ^ Json.str v) sp.sp_attrs)
  in
  Printf.sprintf
    "{\"id\":%d,\"parent\":%s,\"name\":%s,\"start_ns\":%s,\"dur_ns\":%s,\
     \"attrs\":{%s},\"gc\":%s}"
    sp.sp_id
    (match sp.sp_parent with None -> "null" | Some p -> string_of_int p)
    (Json.str sp.sp_name)
    (Json.num sp.sp_start_ns)
    (Json.num sp.sp_dur_ns)
    attrs
    (match sp.sp_gc with
    | None -> "null"
    | Some g ->
      Printf.sprintf "{\"alloc_bytes\":%s,\"minor\":%d,\"major\":%d}"
        (Json.num g.Profile.pc_alloc_bytes)
        g.Profile.pc_minor g.Profile.pc_major)
