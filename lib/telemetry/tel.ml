(* The global switchboard the instrumented hot paths call through.

   Default state is OFF: every entry point checks one [enabled] flag and
   returns immediately, so instrumentation compiled into the engines
   costs a branch (plus the caller's closure allocation for spans) when
   nobody is looking. Installing a sink turns every call site on at
   once; the clock is injectable, so an installed sink can still be
   fully deterministic under test. Bench s3 measures all three states.

   Single global, not a context parameter: threading a telemetry handle
   through Check/Propagate/Engine/Interp/distsim would put an
   observability concern in every signature of the toolchain. The
   process is single-threaded; tests install/uninstall around each
   property (see test_telemetry). *)

type sink = {
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
}

let enabled = ref false
let sink : sink option ref = ref None

let make_sink ?(clock = Clock.wall) ?(trace_capacity = 4096) () =
  { clock; trace = Trace.create ~capacity:trace_capacity ~clock ();
    metrics = Metrics.create () }

let install ?clock ?trace_capacity ?(profile = false) () =
  let s = make_sink ?clock ?trace_capacity () in
  sink := Some s;
  enabled := true;
  if profile then Profile.enable ();
  s

let install_sink s =
  sink := Some s;
  enabled := true

let uninstall () =
  enabled := false;
  sink := None;
  Profile.disable ()

let is_enabled () = !enabled
let current () = if !enabled then !sink else None

let with_installed ?clock ?trace_capacity ?profile f =
  let saved_enabled = !enabled
  and saved_sink = !sink
  and saved_profile = Profile.is_enabled () in
  let s = install ?clock ?trace_capacity ?profile () in
  Fun.protect
    ~finally:(fun () ->
      enabled := saved_enabled;
      sink := saved_sink;
      if saved_profile then Profile.enable () else Profile.disable ())
    (fun () -> f s)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_span ~name ?attrs f =
  if not !enabled then f ()
  else
    match !sink with
    | None -> f ()
    | Some s -> Trace.with_span s.trace ~name ?attrs f

let attr key v =
  if !enabled then
    match !sink with None -> () | Some s -> Trace.add_attr s.trace key v

let mark () =
  if not !enabled then 0
  else match !sink with None -> 0 | Some s -> Trace.mark s.trace

let spans_since m =
  if not !enabled then []
  else match !sink with None -> [] | Some s -> Trace.since s.trace m

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let count ?labels name n =
  if !enabled then
    match !sink with
    | None -> ()
    | Some s -> Metrics.inc s.metrics ?labels ~by:(float_of_int n) name

let gauge ?labels name v =
  if !enabled then
    match !sink with None -> () | Some s -> Metrics.set s.metrics ?labels name v

let observe ?labels name v =
  if !enabled then
    match !sink with
    | None -> ()
    | Some s -> Metrics.observe s.metrics ?labels name v
