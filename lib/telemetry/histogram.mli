(** Log-scale histogram: geometric buckets [lo * r^k] for
    [r = 10^(1/buckets_per_decade)], O(log buckets) observation, and
    within-bucket log-interpolated quantiles clamped to the observed
    extremes — every estimate lands within one bucket ratio of the exact
    sample quantile. *)

type t

val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults: [lo = 1.0], [hi = 1e10], [buckets_per_decade = 5] — 1ns to
    10s at ~58% resolution when observations are nanoseconds. A final
    +inf bucket catches overflow. Raises [Invalid_argument] unless
    [0 < lo < hi] and [buckets_per_decade >= 1]. *)

val observe : t -> float -> unit

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Exact observed minimum; [nan] when empty. *)

val max_value : t -> float
(** Exact observed maximum; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [0 < q <= 1]: the bucket holding the
    [ceil (q * count)]-th observation, log-interpolated within the
    bucket and clamped to [[min_value, max_value]]. [nan] when empty. *)

val ratio : t -> float
(** The geometric bucket ratio — the worst-case quantile error factor. *)

val buckets : t -> (float * int) array
(** [(upper_bound, count)] per bucket, non-cumulative; the last upper
    bound is [infinity]. *)

val merge : t -> t -> t
(** Aggregate two series into a fresh histogram (neither input is
    mutated): per-bucket counts add, so count, sum and the observed
    extremes are exact and quantiles keep the one-bucket-ratio error
    bound of the merged exact sample. Raises [Invalid_argument] when
    the bucket geometries differ. *)

val copy : t -> t
(** An independent snapshot (same geometry, same contents). *)

val merge_all : t list -> t
(** Geometry-checked fold of {!merge} over a fleet of histograms —
    order-independent up to float-addition reassociation (exact for
    integer-valued observations). Raises [Invalid_argument] on an empty
    list or mismatched geometries. *)

val clear : t -> unit
