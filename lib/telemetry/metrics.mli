(** The metric registry: named families of counters, gauges and
    log-scale histograms, fanned out by label sets. Families and series
    keep first-observation order, so expositions are stable across runs.

    Series are created on first use; [declare] only attaches help text.
    Using one name with two different kinds raises [Invalid_argument]. *)

type t

type kind = Counter | Gauge | Histo

val create : unit -> t

val set_histogram_factory : t -> (string -> Histogram.t) -> unit
(** Configure how histograms are built (bucket range/resolution) by
    family name; affects series created after the call. *)

val declare : t -> kind:kind -> name:string -> help:string -> unit
(** Idempotent; records help text for the exposition. *)

val inc : t -> ?labels:(string * string) list -> ?by:float -> string -> unit
(** Increment a counter (default [by = 1.0]). *)

val set : t -> ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge. *)

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Record one observation into a histogram series. *)

val counter_handle :
  t -> ?labels:(string * string) list -> string -> float ref
(** Resolve (creating if absent) a counter/gauge series once and return
    the underlying cell. [inc]/[set] re-resolve the series on every call
    (label sort + key render); hot paths hold the handle instead. The
    cell stays registered — expositions observe every update. Stale after
    {!clear}. *)

val histogram_handle :
  t -> ?labels:(string * string) list -> string -> Histogram.t
(** Same, for a histogram series. *)

val merge_all : t list -> t
(** Merge per-node registries into a fresh cluster-wide one: counter and
    gauge series with equal name+labels add (a merged gauge is the fleet
    sum), histogram series fold through the geometry-checked
    {!Histogram.merge}. First-appearance order across the inputs is
    kept; totals are order-independent. Raises [Invalid_argument] when
    one name is used with two kinds or histogram geometries differ. *)

val value : t -> ?labels:(string * string) list -> string -> float
(** Current value of one series (counters/gauges; a histogram yields its
    count). 0 for unknown names/labels. *)

val total : t -> string -> float
(** Sum of a family's series across all label sets. *)

val find_histogram :
  t -> ?labels:(string * string) list -> string -> Histogram.t option

val counter_series : t -> string -> ((string * string) list * float) list
(** All numeric series of a family, first-observation order. *)

val families : t -> string list

val totals : t -> (string * float) list
(** [(family, total)] for every family, first-observation order — the
    whole-registry snapshot the flight recorder diffs around a
    request. *)

val clear : t -> unit

val to_prometheus : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] headers, counters and
    gauges as samples, histograms as cumulative [_bucket] series plus
    [_sum] and [_count]. *)

val to_json : t -> string
(** One JSON object; histogram series carry count/sum/min/max and
    log-interpolated p50/p90/p99. *)
