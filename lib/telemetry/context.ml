(* Causal trace context: the compact (trace id, parent span id) pair a
   message carries across the simulated wire so the receiver can parent
   its spans under the sender's. Parse-is-the-write-path: the wire form
   is "<trace>/<span>" and both directions run cursor-style against
   reused buffers — no intermediate strings, no option-boxed characters
   in the hot loop (the PR 7 discipline).

   [none] is a shared constant: when tracing is off every message
   carries the same physical block, so disabling tracing costs one
   immediate field per message and zero extra allocation. *)

type t = { tc_trace : int; tc_span : int }

let none = { tc_trace = 0; tc_span = 0 }
let v ~trace ~span = { tc_trace = trace; tc_span = span }
let is_none c = c.tc_trace = 0 && c.tc_span = 0
let trace c = c.tc_trace
let span c = c.tc_span

(* Digits straight into the buffer; contexts are non-negative so the
   sign branch never allocates. *)
let rec add_int buf n =
  if n >= 10 then add_int buf (n / 10);
  Buffer.add_char buf (Char.chr (Char.code '0' + (n mod 10)))

let render_into buf c =
  if c.tc_trace < 0 || c.tc_span < 0 then
    invalid_arg "Context.render_into: negative id";
  add_int buf c.tc_trace;
  Buffer.add_char buf '/';
  add_int buf c.tc_span

let to_string c =
  let buf = Buffer.create 16 in
  render_into buf c;
  Buffer.contents buf

(* Cursor parse: reads digits until the separator, no substring
   allocation. Returns the context and the first position after it. *)
let parse_int s pos =
  let len = String.length s in
  let i = ref pos and acc = ref 0 and seen = ref false in
  while
    !i < len
    &&
    let ch = String.unsafe_get s !i in
    ch >= '0' && ch <= '9'
  do
    acc := (!acc * 10) + (Char.code (String.unsafe_get s !i) - Char.code '0');
    seen := true;
    incr i
  done;
  if !seen then Some (!acc, !i) else None

let parse_at s ~pos =
  match parse_int s pos with
  | None -> None
  | Some (trace, i) ->
    if i < String.length s && s.[i] = '/' then
      match parse_int s (i + 1) with
      | Some (span, j) -> Some ({ tc_trace = trace; tc_span = span }, j)
      | None -> None
    else None

let of_string s =
  match parse_at s ~pos:0 with
  | Some (c, j) when j = String.length s -> Some c
  | _ -> None

let pp ppf c = Fmt.pf ppf "%d/%d" c.tc_trace c.tc_span
