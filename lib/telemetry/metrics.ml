(* The metric registry: named families of counters, gauges and log-scale
   histograms, each family fanned out by a (sorted) label set. Families
   and series render in first-observation order, so reports and
   expositions are stable across runs.

   Exporters: Prometheus text exposition (counters/gauges as samples,
   histograms as cumulative _bucket/_sum/_count series) and a JSON
   snapshot (histograms as count/sum/min/max plus interpolated
   p50/p90/p99). *)

type kind = Counter | Gauge | Histo

type value =
  | Vnum of float ref (* counter or gauge *)
  | Vhist of Histogram.t

type family = {
  f_name : string;
  f_kind : kind;
  mutable f_help : string;
  f_series : (string, value) Hashtbl.t; (* keyed by rendered label set *)
  mutable f_order : (string * (string * string) list) list; (* key, labels *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable order : string list; (* family first-observation order *)
  mutable histogram_of : string -> Histogram.t;
}

let default_histogram () = Histogram.create ()

let create () =
  {
    families = Hashtbl.create 32;
    order = [];
    histogram_of = (fun _ -> default_histogram ());
  }

let set_histogram_factory t f = t.histogram_of <- f

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histo -> "histogram"

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=" ^ String.escaped v) labels)

let family t ~kind ~name =
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if f.f_kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s is a %s, used as a %s" name
           (kind_name f.f_kind) (kind_name kind));
    f
  | None ->
    let f =
      { f_name = name; f_kind = kind; f_help = "";
        f_series = Hashtbl.create 4; f_order = [] }
    in
    Hashtbl.add t.families name f;
    t.order <- t.order @ [ name ];
    f

let declare t ~kind ~name ~help =
  let f = family t ~kind ~name in
  f.f_help <- help

let series t ~kind ~name labels =
  let f = family t ~kind ~name in
  let labels = canonical_labels labels in
  let key = label_key labels in
  match Hashtbl.find_opt f.f_series key with
  | Some v -> v
  | None ->
    let v =
      match kind with
      | Counter | Gauge -> Vnum (ref 0.0)
      | Histo -> Vhist (t.histogram_of name)
    in
    Hashtbl.add f.f_series key v;
    f.f_order <- f.f_order @ [ (key, labels) ];
    v

let inc t ?(labels = []) ?(by = 1.0) name =
  match series t ~kind:Counter ~name labels with
  | Vnum r -> r := !r +. by
  | Vhist _ -> assert false

let set t ?(labels = []) name v =
  match series t ~kind:Gauge ~name labels with
  | Vnum r -> r := v
  | Vhist _ -> assert false

let observe t ?(labels = []) name v =
  match series t ~kind:Histo ~name labels with
  | Vhist h -> Histogram.observe h v
  | Vnum _ -> assert false

(* Resolved-series handles: every [inc]/[observe] pays a label sort plus
   a rendered-key allocation to find its series. Hot callers (the
   server's per-request counters) resolve the series once and bump the
   handle directly — the handle stays registered, so expositions see
   every update. *)

let counter_handle t ?(labels = []) name =
  match series t ~kind:Counter ~name labels with
  | Vnum r -> r
  | Vhist _ -> assert false

let histogram_handle t ?(labels = []) name =
  match series t ~kind:Histo ~name labels with
  | Vhist h -> h
  | Vnum _ -> assert false

(* ------------------------------------------------------------------ *)
(* Fleet roll-up                                                       *)
(* ------------------------------------------------------------------ *)

(* Merge per-node registries into a fresh one: counters and gauges add
   (a merged gauge is the fleet sum), histogram series fold through the
   geometry-checked Histogram.merge. Families and series keep first
   appearance order across the inputs, so the merged exposition is as
   stable as each node's; totals are order-independent (property-tested
   in test_telemetry). *)
let merge_all ts =
  let out = create () in
  List.iter
    (fun src ->
      List.iter
        (fun name ->
          let f = Hashtbl.find src.families name in
          let g = family out ~kind:f.f_kind ~name in
          if g.f_help = "" then g.f_help <- f.f_help;
          List.iter
            (fun (key, labels) ->
              match Hashtbl.find_opt f.f_series key with
              | None -> ()
              | Some v -> (
                match (Hashtbl.find_opt g.f_series key, v) with
                | None, Vnum r ->
                  Hashtbl.add g.f_series key (Vnum (ref !r));
                  g.f_order <- g.f_order @ [ (key, labels) ]
                | None, Vhist h ->
                  Hashtbl.add g.f_series key (Vhist (Histogram.copy h));
                  g.f_order <- g.f_order @ [ (key, labels) ]
                | Some (Vnum o), Vnum r -> o := !o +. !r
                | Some (Vhist o), Vhist h ->
                  Hashtbl.replace g.f_series key (Vhist (Histogram.merge o h))
                | Some _, _ ->
                  (* the family-level kind check above rules this out *)
                  assert false))
            f.f_order)
        src.order)
    ts;
  out

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let value t ?(labels = []) name =
  match Hashtbl.find_opt t.families name with
  | None -> 0.0
  | Some f -> (
    match Hashtbl.find_opt f.f_series (label_key (canonical_labels labels)) with
    | Some (Vnum r) -> !r
    | Some (Vhist h) -> float_of_int (Histogram.count h)
    | None -> 0.0)

let total t name =
  match Hashtbl.find_opt t.families name with
  | None -> 0.0
  | Some f ->
    Hashtbl.fold
      (fun _ v acc ->
        match v with
        | Vnum r -> acc +. !r
        | Vhist h -> acc +. float_of_int (Histogram.count h))
      f.f_series 0.0

let find_histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.families name with
  | None -> None
  | Some f -> (
    match Hashtbl.find_opt f.f_series (label_key (canonical_labels labels)) with
    | Some (Vhist h) -> Some h
    | Some (Vnum _) | None -> None)

let counter_series t name =
  match Hashtbl.find_opt t.families name with
  | None -> []
  | Some f ->
    List.filter_map
      (fun (key, labels) ->
        match Hashtbl.find_opt f.f_series key with
        | Some (Vnum r) -> Some (labels, !r)
        | _ -> None)
      f.f_order

let families t = t.order

(* Family totals in first-observation order: the cheap whole-registry
   snapshot the flight recorder diffs around a request. *)
let totals t = List.map (fun name -> (name, total t name)) t.order

let clear t =
  Hashtbl.reset t.families;
  t.order <- []

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

let prom_num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let f = Hashtbl.find t.families name in
      if f.f_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape f.f_help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name (kind_name f.f_kind));
      List.iter
        (fun (key, labels) ->
          match Hashtbl.find_opt f.f_series key with
          | Some (Vnum r) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_num !r))
          | Some (Vhist h) ->
            let cum = ref 0 in
            Array.iter
              (fun (ub, c) ->
                cum := !cum + c;
                let le = if ub = infinity then "+Inf" else prom_num ub in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (prom_labels (labels @ [ ("le", le) ]))
                     !cum))
              (Histogram.buckets h);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
                 (prom_num (Histogram.sum h)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels)
                 (Histogram.count h))
          | None -> ())
        f.f_order)
    t.order;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Json.str k ^ ":" ^ Json.str v) labels)
  ^ "}"

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      let f = Hashtbl.find t.families name in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"kind\":%s,\"help\":%s,\"series\":["
           (Json.str name)
           (Json.str (kind_name f.f_kind))
           (Json.str f.f_help));
      List.iteri
        (fun j (key, labels) ->
          if j > 0 then Buffer.add_char buf ',';
          match Hashtbl.find_opt f.f_series key with
          | Some (Vnum r) ->
            Buffer.add_string buf
              (Printf.sprintf "{\"labels\":%s,\"value\":%s}" (json_labels labels)
                 (Json.num !r))
          | Some (Vhist h) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"labels\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\
                  \"p50\":%s,\"p90\":%s,\"p99\":%s}"
                 (json_labels labels) (Histogram.count h)
                 (Json.num (Histogram.sum h))
                 (Json.num (Histogram.min_value h))
                 (Json.num (Histogram.max_value h))
                 (Json.num (Histogram.quantile h 0.50))
                 (Json.num (Histogram.quantile h 0.90))
                 (Json.num (Histogram.quantile h 0.99)))
          | None -> ())
        f.f_order;
      Buffer.add_string buf "]}")
    t.order;
  Buffer.add_string buf "]}";
  Buffer.contents buf
