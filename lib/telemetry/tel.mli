(** The global switchboard instrumented hot paths call through.

    Default state is OFF: every entry point is a single flag check, so
    instrumentation compiled into the engines is ~free until a sink is
    installed (bench s3 measures this). The process is single-threaded;
    one global sink serves the whole toolchain. *)

type sink = {
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
}

val make_sink : ?clock:Clock.t -> ?trace_capacity:int -> unit -> sink
(** Build a sink without installing it (defaults: wall clock, 4096-span
    ring). *)

val install : ?clock:Clock.t -> ?trace_capacity:int -> ?profile:bool -> unit -> sink
(** Create a sink, install it globally, enable every call site.
    [~profile:true] also enables {!Profile}, so every span carries a
    GC/allocation delta. *)

val install_sink : sink -> unit

val uninstall : unit -> unit
(** Back to the no-op default; also disables {!Profile}. *)

val is_enabled : unit -> bool
val current : unit -> sink option  (** [None] when disabled. *)

val with_installed :
  ?clock:Clock.t -> ?trace_capacity:int -> ?profile:bool -> (sink -> 'a) -> 'a
(** Install a fresh sink around the thunk, restoring the previous global
    state (including the {!Profile} flag) afterwards (exception-safe) —
    the test-suite idiom. *)

val with_span :
  name:string -> ?attrs:(unit -> (string * string) list) ->
  (unit -> 'a) -> 'a
(** {!Trace.with_span} on the installed sink; calls the thunk directly
    when disabled. [attrs] is only evaluated when enabled. *)

val attr : string -> string -> unit
(** {!Trace.add_attr} on the innermost open span; no-op when disabled.
    Guard argument computation with {!is_enabled} when it allocates. *)

val mark : unit -> int
val spans_since : int -> Trace.span list
(** Per-request span capture; [spans_since (mark ())] brackets. *)

val count : ?labels:(string * string) list -> string -> int -> unit
(** Add to a counter; no-op when disabled. *)

val gauge : ?labels:(string * string) list -> string -> float -> unit
val observe : ?labels:(string * string) list -> string -> float -> unit
(** Histogram observation; no-op when disabled. *)
