(* The flight recorder: a bounded ring of per-request dossiers, the
   always-on black box above the span/metric layer.

   A dossier is the context needed to explain — and deterministically
   re-execute — one request: the wire line, the registry generation and
   config fingerprint it ran under, the outcome, the root duration, the
   cache hit/miss chain, and a digest of the canonical response. The
   heavyweight parts (the full span tree, metric deltas) are retained
   only for interesting requests: errors (including over-budget and
   timeout) and the slowest-k seen so far; everything else is stored
   stripped, so steady-state cost per request is O(1) ring writes plus
   an O(k) top-k probe with small constant k.

   The wire line and response digest are lazy: serializing a request
   and hashing a response are the two measurable per-request costs, and
   neither is needed until the dossier is exported or replayed — the
   ring is bounded, so the deferred work is too.

   The recorder is service-agnostic — dossier fields are strings and
   spans — so it lives here in gp_telemetry; gp_service fills dossiers
   in and owns the replay path (Flight). *)

type dossier = {
  do_id : int; (* the request id the server assigned *)
  do_kind : string; (* request kind, or "invalid" *)
  do_wire : string Lazy.t; (* re-servable wire line; forced at export *)
  do_generation : int; (* registry generation the request saw *)
  do_config : string; (* canonical server-config line *)
  do_config_fp : string; (* digest of do_config *)
  do_outcome : string; (* "ok" or the error-code name *)
  do_detail : string; (* error detail, "" on ok *)
  do_cached : bool;
  do_steps : int;
  do_dur_ns : float; (* root-span duration (wall when telemetry off) *)
  do_response_fp : string Lazy.t; (* digest of the canonical response *)
  do_cache_chain : (string * int * int) list; (* cache, hits Δ, misses Δ *)
  do_spans : Trace.span list; (* full tree, interesting requests only *)
  do_metric_deltas : (string * float) list; (* family totals Δ, ditto *)
}

type t = {
  capacity : int;
  slowest_k : int;
  ring : dossier array;
  mutable recorded : int;
  mutable slow : float list; (* up-to-k slowest durations, ascending *)
}

let empty_dossier =
  { do_id = 0; do_kind = ""; do_wire = Lazy.from_val ""; do_generation = 0;
    do_config = ""; do_config_fp = ""; do_outcome = ""; do_detail = "";
    do_cached = false; do_steps = 0; do_dur_ns = 0.0;
    do_response_fp = Lazy.from_val ""; do_cache_chain = []; do_spans = [];
    do_metric_deltas = [] }

let create ?(capacity = 512) ?(slowest = 8) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity < 1";
  if slowest < 0 then invalid_arg "Recorder.create: slowest < 0";
  { capacity; slowest_k = slowest;
    ring = Array.make capacity empty_dossier; recorded = 0; slow = [] }

let capacity t = t.capacity
let recorded t = t.recorded
let retained t = Int.min t.recorded t.capacity
let dropped t = Int.max 0 (t.recorded - t.capacity)

(* Would this duration rank among the k slowest recorded so far? *)
let qualifies_slowest t dur =
  t.slowest_k > 0
  && (List.length t.slow < t.slowest_k
     || match t.slow with m :: _ -> dur > m | [] -> true)

let note_slow t dur =
  if t.slowest_k > 0 then begin
    let l = List.sort Float.compare (dur :: t.slow) in
    t.slow <- (if List.length l > t.slowest_k then List.tl l else l)
  end

(* Will a dossier with this outcome and duration keep its heavyweight
   payload? Exposed so the filler can skip assembling spans and metric
   deltas for requests that would only be stored stripped. *)
let wants_payload t ~ok ~dur_ns =
  (not ok) || qualifies_slowest t dur_ns

let record t d =
  let interesting =
    wants_payload t ~ok:(d.do_outcome = "ok") ~dur_ns:d.do_dur_ns
  in
  note_slow t d.do_dur_ns;
  let d =
    if interesting then d
    else { d with do_spans = []; do_metric_deltas = [] }
  in
  t.ring.(t.recorded mod t.capacity) <- d;
  t.recorded <- t.recorded + 1

(* Retained dossiers, oldest first. *)
let dossiers t =
  let n = retained t in
  List.init n (fun i -> t.ring.((t.recorded - n + i) mod t.capacity))

let clear t =
  t.recorded <- 0;
  t.slow <- []

(* ------------------------------------------------------------------ *)
(* JSONL export                                                        *)
(* ------------------------------------------------------------------ *)

let dossier_to_json d =
  let chain =
    String.concat ","
      (List.map
         (fun (name, h, m) ->
           Printf.sprintf "{\"cache\":%s,\"hits\":%d,\"misses\":%d}"
             (Json.str name) h m)
         d.do_cache_chain)
  in
  let deltas =
    String.concat ","
      (List.map
         (fun (name, v) ->
           Printf.sprintf "{\"name\":%s,\"delta\":%s}" (Json.str name)
             (Json.num v))
         d.do_metric_deltas)
  in
  let spans = String.concat "," (List.map Trace.span_to_json d.do_spans) in
  Printf.sprintf
    "{\"id\":%d,\"kind\":%s,\"wire\":%s,\"generation\":%d,\"config\":%s,\
     \"config_fp\":%s,\"outcome\":%s,\"detail\":%s,\"cached\":%b,\
     \"steps\":%d,\"dur_ns\":%s,\"response_fp\":%s,\"cache_chain\":[%s],\
     \"metric_deltas\":[%s],\"spans\":[%s]}"
    d.do_id (Json.str d.do_kind)
    (Json.str (Lazy.force d.do_wire))
    d.do_generation (Json.str d.do_config) (Json.str d.do_config_fp)
    (Json.str d.do_outcome) (Json.str d.do_detail) d.do_cached d.do_steps
    (Json.num d.do_dur_ns)
    (Json.str (Lazy.force d.do_response_fp))
    chain deltas spans

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun d ->
      Buffer.add_string buf (dossier_to_json d);
      Buffer.add_char buf '\n')
    (dossiers t);
  Buffer.contents buf

let pp_summary ppf t =
  let errors =
    List.length (List.filter (fun d -> d.do_outcome <> "ok") (dossiers t))
  in
  let with_spans =
    List.length (List.filter (fun d -> d.do_spans <> []) (dossiers t))
  in
  Fmt.pf ppf
    "flight recorder: %d recorded, %d retained (%d dropped), %d error \
     dossier(s), %d with span trees"
    (recorded t) (retained t) (dropped t) errors with_spans
