(* Log-scale histogram: geometric buckets, O(log buckets) observation,
   within-bucket log-interpolated quantiles.

   This generalises the fixed decade buckets that used to live privately
   in gp_service's Metrics: bucket boundaries are [lo * r^k] for
   r = 10^(1/buckets_per_decade), so resolution is a configuration knob
   rather than a constant. Quantile estimates interpolate inside the
   bucket under a log-uniform assumption and clamp to the observed
   [min, max], which pins them within one bucket ratio of the exact
   sample quantile (property-tested in test_telemetry). *)

type t = {
  bounds : float array; (* strictly increasing upper bounds; last = +inf *)
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

(* Default range covers 1ns .. 10s when observations are nanoseconds. *)
let create ?(lo = 1.0) ?(hi = 1e10) ?(buckets_per_decade = 5) () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create: need 0 < lo < hi";
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.create: buckets_per_decade < 1";
  let ratio = 10.0 ** (1.0 /. float_of_int buckets_per_decade) in
  let rec build acc b = if b >= hi then List.rev acc else build (b :: acc) (b *. ratio) in
  let finite = build [] lo in
  let bounds = Array.of_list (finite @ [ infinity ]) in
  {
    bounds;
    counts = Array.make (Array.length bounds) 0;
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let ratio t =
  if Array.length t.bounds < 2 then 10.0 else t.bounds.(1) /. t.bounds.(0)

(* Index of the first bound >= v (binary search; last bucket catches all). *)
let bucket_index t v =
  let n = Array.length t.bounds in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= t.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then nan else t.vmin
let max_value t = if t.count = 0 then nan else t.vmax
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

(* The [q]-quantile (0 < q <= 1) of the observed sample, estimated by
   walking to the bucket holding the ceil(q*n)-th observation and
   interpolating log-uniformly inside it. *)
let quantile t q =
  if t.count = 0 then nan
  else begin
    let target = int_of_float (ceil (q *. float_of_int t.count)) in
    let target = if target < 1 then 1 else target in
    let n = Array.length t.bounds in
    let rec find i acc =
      if i >= n then n - 1
      else
        let acc' = acc + t.counts.(i) in
        if acc' >= target then i else find (i + 1) acc'
    in
    let rec before i acc j =
      if j >= i then acc else before i (acc + t.counts.(j)) (j + 1)
    in
    let i = find 0 0 in
    let cum_before = before i 0 0 in
    let upper = t.bounds.(i) in
    let lower = if i = 0 then t.bounds.(0) /. ratio t else t.bounds.(i - 1) in
    let est =
      if upper = infinity then t.vmax
      else
        let frac =
          float_of_int (target - cum_before) /. float_of_int t.counts.(i)
        in
        lower *. ((upper /. lower) ** frac)
    in
    (* the sample extremes are known exactly; never estimate past them *)
    Float.min t.vmax (Float.max t.vmin est)
  end

let buckets t =
  Array.init (Array.length t.bounds) (fun i -> (t.bounds.(i), t.counts.(i)))

(* Aggregate two series into a fresh histogram. Only meaningful between
   histograms with identical bucket geometry (same create parameters) —
   per-bucket counts add exactly, so count/sum/extremes are exact and
   quantile estimates keep the single-bucket-ratio error bound
   (property-tested in test_telemetry). *)
let merge a b =
  if Array.length a.bounds <> Array.length b.bounds
     || not (Array.for_all2 (fun x y -> x = y) a.bounds b.bounds)
  then invalid_arg "Histogram.merge: mismatched bucket geometry";
  { bounds = Array.copy a.bounds;
    counts = Array.init (Array.length a.counts) (fun i ->
        a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax }

let copy t =
  { bounds = Array.copy t.bounds;
    counts = Array.copy t.counts;
    count = t.count;
    sum = t.sum;
    vmin = t.vmin;
    vmax = t.vmax }

(* Fold [merge] over a fleet of per-node histograms. Because merge adds
   per-bucket counts and float sums of the same observations, the result
   is order-independent up to float-addition reassociation — exactly so
   for integer-valued observations (property-tested in
   test_telemetry). *)
let merge_all = function
  | [] -> invalid_arg "Histogram.merge_all: empty list"
  | [ h ] -> copy h
  | h :: rest -> List.fold_left merge (copy h) rest

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity
