(* Minimal JSON emission helpers shared by the exporters. Emission only:
   the library never parses JSON (the test suite carries its own
   validating parser). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

(* JSON has no inf/nan literals; map them to null. *)
let num v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v
