(** Cross-node trace assembly: group per-node completed spans by their
    ["trace"] attribute and rebuild each trace's causal tree across the
    cluster. Span ids are cluster-global, so parent references resolve
    across node boundaries; simulated time is globally consistent, so
    interval checks are meaningful across nodes. *)

type tree = {
  t_node : int;  (** the node whose ring recorded the span *)
  t_span : Trace.span;
  t_children : tree list;  (** start order, ids break ties *)
}

type journey = {
  j_trace : int;
  j_roots : tree list;
      (** trees under parentless spans, start order — a well-formed
          journey has exactly one *)
  j_orphans : (int * Trace.span) list;
      (** [(node, span)] whose parent id was never recorded (e.g. the
          message that would have closed the parent was dropped) —
          surfaced here, never silently attached to a root *)
  j_spans : int;  (** total spans grouped into this trace *)
}

val trace_attr : Trace.span -> int option
(** The trace id stamped on the span at emission, if any. *)

val assemble : (int * Trace.span list) list -> journey list
(** [(node, spans)] per node in; one journey per distinct trace id out,
    sorted by trace id. Spans without a ["trace"] attribute are
    ignored. *)

val find : journey list -> int -> journey option

val well_formed : journey -> (unit, string) result
(** Single root, no orphans, and causal nesting: every child starts no
    earlier than its parent, and a {e same-node} child is fully
    contained in its parent's interval (a cross-node child may outlive
    its parent — e.g. a serve delivered after the router retried the
    attempt — so only the start bound applies across nodes). *)

val root_name : journey -> string option
(** Name of the first root span, if any. *)
