(* GC and allocation accounting for spans.

   Same discipline as Tel: off by default, one flag check per call site.
   [sample] returns [None] when profiling is disabled, so the tracer
   pays a single branch (and no Gc.quick_stat call) on the common path —
   bench s3's one-flag-check budget also covers this probe.

   Counters are process-global (OCaml's GC is), so a span's delta
   includes everything its children allocated — the same hierarchical
   containment as wall time, which is what flamegraph weighting wants. *)

type counters = {
  pc_alloc_bytes : float;
  pc_minor : int;
  pc_major : int;
}

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let sample () =
  if not !enabled then None
  else
    let s = Gc.quick_stat () in
    Some
      { pc_alloc_bytes = Gc.allocated_bytes ();
        pc_minor = s.Gc.minor_collections;
        pc_major = s.Gc.major_collections }

let diff ~before ~after =
  { pc_alloc_bytes = Float.max 0.0 (after.pc_alloc_bytes -. before.pc_alloc_bytes);
    pc_minor = after.pc_minor - before.pc_minor;
    pc_major = after.pc_major - before.pc_major }

let with_profiling f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) f

let pp_bytes ppf b =
  if Float.is_nan b then Fmt.string ppf "-"
  else if b < 1e3 then Fmt.pf ppf "%.0fB" b
  else if b < 1e6 then Fmt.pf ppf "%.1fkB" (b /. 1e3)
  else if b < 1e9 then Fmt.pf ppf "%.2fMB" (b /. 1e6)
  else Fmt.pf ppf "%.2fGB" (b /. 1e9)
