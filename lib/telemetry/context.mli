(** Causal trace context — the compact [(trace_id, parent_span_id)]
    pair carried on every cluster wire message so a receiver can parent
    its spans under the sender's span in another node's ring.

    The wire form is ["<trace>/<span>"]; rendering appends digits
    directly into a reused buffer and parsing runs a cursor over the
    line with no intermediate strings (the zero-allocation wire
    discipline of the s7 parse path). *)

type t = { tc_trace : int; tc_span : int }

val none : t
(** The empty context ([0/0]) — a single shared block, so carrying it on
    every message while tracing is disabled allocates nothing. *)

val v : trace:int -> span:int -> t

val is_none : t -> bool

val trace : t -> int
val span : t -> int

val render_into : Buffer.t -> t -> unit
(** Append the wire form; raises [Invalid_argument] on negative ids. *)

val to_string : t -> string

val parse_at : string -> pos:int -> (t * int) option
(** Cursor parse starting at [pos]: on success returns the context and
    the position one past its last digit. *)

val of_string : string -> t option
(** [parse_at ~pos:0] requiring the whole string to be consumed. *)

val pp : Format.formatter -> t -> unit
