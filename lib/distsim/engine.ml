(* The deterministic discrete-event message-passing simulator.

   This is the testbed substitute for the paper's Section 4: it executes
   distributed algorithms as state machines exchanging messages under a
   chosen timing model, with seeded failure injection, and it *accounts for
   local computation* — the cost the paper complains is "rarely accounted
   for" in the literature — alongside message and time metrics. Identical
   seeds give identical runs. *)

(* ------------------------------------------------------------------ *)
(* Timing models (taxonomy dimension 6)                                *)
(* ------------------------------------------------------------------ *)

type timing =
  | Synchronous (* every message takes exactly 1 time unit *)
  | Asynchronous of { max_delay : float } (* uniform (0, max_delay] *)
  | Partially_synchronous of { bound : float } (* uniform (0, bound], known *)

(* ------------------------------------------------------------------ *)
(* Failure models (taxonomy dimension 3)                               *)
(* ------------------------------------------------------------------ *)

type 'msg failure =
  | Crash of { node : int; at : float } (* crash-stop at time [at] *)
  | Drop_links of { prob : float } (* each message dropped with prob *)
  | Byzantine of { node : int; corrupt : 'msg -> 'msg }
  | Partition of { groups : int list list; from_ : float; until : float }
      (* network partition active while from_ <= now < until: listed
         groups are islands, unlisted nodes together form one implicit
         island, and messages crossing islands are dropped (no RNG
         draw, so runs without partitions keep their exact stream) *)

type 'msg config = {
  timing : timing;
  failures : 'msg failure list;
  seed : int;
  max_time : float; (* safety horizon *)
  max_events : int;
}

let default_config =
  { timing = Synchronous; failures = []; seed = 42; max_time = 1e6;
    max_events = 2_000_000 }

(* ------------------------------------------------------------------ *)
(* The process interface                                               *)
(* ------------------------------------------------------------------ *)

(* Handlers receive a context with the node's identity and neighbourhood,
   plus effect functions: [send] enqueues a message to a neighbour,
   [charge] accounts local computation steps, [decide] records the node's
   output, [halt] stops the node, [timer] schedules a message back to
   this node after a chosen simulated delay (a local alarm clock: not a
   network message, so it is exempt from drops, corruption and
   partitions, draws no RNG, and stays out of the message metrics). *)
type 'msg ctx = {
  self : int;
  neighbors : int list;
  now : unit -> float;
  send : int -> 'msg -> unit;
  timer : delay:float -> 'msg -> unit;
  charge : int -> unit;
  decide : string -> unit;
  halt : unit -> unit;
}

type ('state, 'msg) algorithm = {
  algo_name : string;
  initial : 'msg ctx -> 'state;
  on_message : 'msg ctx -> 'state -> src:int -> 'msg -> 'state;
}

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  local_steps : int array; (* per node *)
  sent_by : int array; (* per-node sends (timers excluded) *)
  delivered_to : int array; (* per-node deliveries (timers excluded) *)
  finish_time : float;
  events : int;
}

let total_local_steps m = Array.fold_left ( + ) 0 m.local_steps
let max_local_steps m = Array.fold_left max 0 m.local_steps

type result = {
  decisions : string option array;
  halted : bool array;
  metrics : metrics;
}

(* ------------------------------------------------------------------ *)
(* Event queue: binary heap on (time, seq) for determinism             *)
(* ------------------------------------------------------------------ *)

module Eq = struct
  type 'msg ev = {
    t : float;
    seq : int;
    src : int;
    dst : int;
    msg : 'msg;
    tmr : bool; (* a self-scheduled timer, outside the message metrics *)
  }

  type 'msg t = { mutable a : 'msg ev array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let lt x y = x.t < y.t || (x.t = y.t && x.seq < y.seq)

  let push q ev =
    if q.len = Array.length q.a then begin
      let cap = max 16 (2 * q.len) in
      let fresh = Array.make cap ev in
      Array.blit q.a 0 fresh 0 q.len;
      q.a <- fresh
    end;
    q.a.(q.len) <- ev;
    q.len <- q.len + 1;
    let i = ref (q.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt q.a.(!i) q.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = q.a.(p) in
      q.a.(p) <- q.a.(!i);
      q.a.(!i) <- tmp;
      i := p
    done

  let pop q =
    if q.len = 0 then None
    else begin
      let top = q.a.(0) in
      q.len <- q.len - 1;
      if q.len > 0 then begin
        q.a.(0) <- q.a.(q.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < q.len && lt q.a.(l) q.a.(!smallest) then smallest := l;
          if r < q.len && lt q.a.(r) q.a.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = q.a.(!smallest) in
            q.a.(!smallest) <- q.a.(!i);
            q.a.(!i) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

(* The simulation core is untouched by telemetry: the RNG stream, event
   order and metrics are computed exactly as before, and the wrapper only
   reads the finished result — identical transcripts per seed with a sink
   installed or not (the transparency property tests pin this down). *)
let run_core (type s m) ~(config : m config) (topo : Topology.t)
    (algo : (s, m) algorithm) : result =
  let n = Topology.num_nodes topo in
  let rng = Random.State.make [| config.seed |] in
  let queue : m Eq.t = Eq.create () in
  let seq = ref 0 in
  let now = ref 0.0 in
  let sent = ref 0 and delivered = ref 0 and dropped = ref 0 in
  let events = ref 0 in
  let local = Array.make n 0 in
  let sent_by = Array.make n 0 in
  let delivered_to = Array.make n 0 in
  let decisions = Array.make n None in
  let halted = Array.make n false in
  let crashed_at =
    Array.make n infinity
  in
  let drop_prob = ref 0.0 in
  let byzantine : (int, m -> m) Hashtbl.t = Hashtbl.create 4 in
  (* each partition becomes (island-id per node, window): listed groups
     are islands 0..k-1, everyone unlisted shares the implicit island k *)
  let partitions = ref [] in
  List.iter
    (function
      | Crash { node; at } ->
        if node >= 0 && node < n then crashed_at.(node) <- at
      | Drop_links { prob } -> drop_prob := prob
      | Byzantine { node; corrupt } -> Hashtbl.replace byzantine node corrupt
      | Partition { groups; from_; until } ->
        let island = Array.make n (List.length groups) in
        List.iteri
          (fun i group ->
            List.iter
              (fun node -> if node >= 0 && node < n then island.(node) <- i)
              group)
          groups;
        partitions := (island, from_, until) :: !partitions)
    config.failures;
  let partitioned src dst =
    List.exists
      (fun (island, from_, until) ->
        !now >= from_ && !now < until && island.(src) <> island.(dst))
      !partitions
  in
  let is_crashed node = !now >= crashed_at.(node) in
  let delay () =
    match config.timing with
    | Synchronous -> 1.0
    | Asynchronous { max_delay } ->
      let u = Random.State.float rng 1.0 in
      Float.max 1e-6 (u *. max_delay)
    | Partially_synchronous { bound } ->
      let u = Random.State.float rng 1.0 in
      Float.max 1e-6 (u *. bound)
  in
  let send_from src dst msg =
    if (not (is_crashed src)) && not halted.(src) then begin
      incr sent;
      sent_by.(src) <- sent_by.(src) + 1;
      let msg =
        match Hashtbl.find_opt byzantine src with
        | Some corrupt -> corrupt msg
        | None -> msg
      in
      if partitioned src dst then incr dropped
      else if !drop_prob > 0.0 && Random.State.float rng 1.0 < !drop_prob then
        incr dropped
      else begin
        incr seq;
        Eq.push queue
          { Eq.t = !now +. delay (); seq = !seq; src; dst; msg; tmr = false }
      end
    end
  in
  (* a timer is a local alarm, not a network message: fixed caller-chosen
     delay (no RNG), immune to drops/partitions/corruption, and invisible
     to the message metrics. It still dies with a crashed/halted node. *)
  let timer_at i delay msg =
    if (not (is_crashed i)) && not halted.(i) then begin
      incr seq;
      Eq.push queue
        { Eq.t = !now +. Float.max 1e-9 delay; seq = !seq; src = i; dst = i;
          msg; tmr = true }
    end
  in
  let ctx_of i =
    {
      self = i;
      neighbors = Topology.neighbors topo i;
      now = (fun () -> !now);
      send = (fun dst msg -> send_from i dst msg);
      timer = (fun ~delay msg -> timer_at i delay msg);
      charge = (fun k -> local.(i) <- local.(i) + k);
      decide = (fun v -> decisions.(i) <- Some v);
      halt = (fun () -> halted.(i) <- true);
    }
  in
  (* initialisation round at time 0 *)
  let states =
    Array.init n (fun i -> algo.initial (ctx_of i))
  in
  (* main loop *)
  let continue = ref true in
  while !continue do
    match Eq.pop queue with
    | None -> continue := false
    | Some ev ->
      now := ev.Eq.t;
      incr events;
      if !now > config.max_time || !events > config.max_events then
        continue := false
      else if (not (is_crashed ev.Eq.dst)) && not halted.(ev.Eq.dst) then begin
        if not ev.Eq.tmr then begin
          incr delivered;
          delivered_to.(ev.Eq.dst) <- delivered_to.(ev.Eq.dst) + 1
        end;
        states.(ev.Eq.dst) <-
          algo.on_message (ctx_of ev.Eq.dst) states.(ev.Eq.dst)
            ~src:ev.Eq.src ev.Eq.msg
      end
  done;
  {
    decisions;
    halted;
    metrics =
      {
        messages_sent = !sent;
        messages_delivered = !delivered;
        messages_dropped = !dropped;
        local_steps = local;
        sent_by;
        delivered_to;
        finish_time = !now;
        events = !events;
      };
  }

let run ?(config = default_config) topo algo =
  let module Tel = Gp_telemetry.Tel in
  Tel.with_span ~name:"distsim.run"
    ~attrs:(fun () ->
      [
        ("algorithm", algo.algo_name);
        ("nodes", string_of_int (Topology.num_nodes topo));
        ("seed", string_of_int config.seed);
      ])
    (fun () ->
      let r = run_core ~config topo algo in
      if Tel.is_enabled () then begin
        let labels = [ ("algorithm", algo.algo_name) ] in
        Tel.count ~labels "gp_distsim_runs_total" 1;
        Tel.count ~labels "gp_distsim_events_total" r.metrics.events;
        Tel.count ~labels "gp_distsim_messages_sent_total"
          r.metrics.messages_sent;
        Tel.count ~labels "gp_distsim_messages_delivered_total"
          r.metrics.messages_delivered;
        Tel.count ~labels "gp_distsim_messages_dropped_total"
          r.metrics.messages_dropped;
        Tel.count ~labels "gp_distsim_local_steps_total"
          (total_local_steps r.metrics);
        Tel.observe ~labels "gp_distsim_finish_time"
          r.metrics.finish_time;
        Tel.attr "events" (string_of_int r.metrics.events);
        Tel.attr "finish_time" (Printf.sprintf "%.2f" r.metrics.finish_time)
      end;
      r)

let pp_metrics ppf m =
  Fmt.pf ppf
    "msgs sent=%d delivered=%d dropped=%d, time=%.2f, local steps: total=%d \
     max/node=%d"
    m.messages_sent m.messages_delivered m.messages_dropped m.finish_time
    (total_local_steps m) (max_local_steps m)
