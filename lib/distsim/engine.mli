(** The deterministic discrete-event message-passing simulator — the
    testbed substitute for paper Section 4.

    Distributed algorithms run as per-node state machines exchanging
    messages under a timing model, with seeded failure injection.
    Metrics cover messages, simulated time, {e and local computation per
    node} — the cost the paper notes is "rarely accounted for". Equal
    seeds give identical runs. *)

(** Timing models (taxonomy dimension 6). *)
type timing =
  | Synchronous  (** every message takes exactly one time unit *)
  | Asynchronous of { max_delay : float }  (** uniform (0, max_delay] *)
  | Partially_synchronous of { bound : float }
      (** uniform (0, bound], with the bound known *)

(** Failure models (taxonomy dimension 3). *)
type 'msg failure =
  | Crash of { node : int; at : float }  (** crash-stop at time [at] *)
  | Drop_links of { prob : float }
  | Byzantine of { node : int; corrupt : 'msg -> 'msg }
      (** the node's outgoing messages are corrupted *)
  | Partition of { groups : int list list; from_ : float; until : float }
      (** network partition active while [from_ <= now < until]: each
          listed group is an island, all unlisted nodes together form
          one implicit island, and messages sent across islands are
          dropped. Deterministic — no RNG draw — so configurations
          without partitions keep their exact event stream. *)

type 'msg config = {
  timing : timing;
  failures : 'msg failure list;
  seed : int;
  max_time : float;
  max_events : int;
}

val default_config : 'msg config
(** Synchronous, no failures, seed 42. *)

(** Per-node context with effect handles: [send] to a neighbour,
    [timer] a message back to this node after a chosen simulated delay
    (a local alarm clock: exempt from drops, corruption and partitions,
    draws no RNG, excluded from the message metrics, but dies with a
    crashed or halted node), [charge] local computation steps, [decide]
    the node's output, [halt] the node. *)
type 'msg ctx = {
  self : int;
  neighbors : int list;
  now : unit -> float;
  send : int -> 'msg -> unit;
  timer : delay:float -> 'msg -> unit;
  charge : int -> unit;
  decide : string -> unit;
  halt : unit -> unit;
}

type ('state, 'msg) algorithm = {
  algo_name : string;
  initial : 'msg ctx -> 'state;
  on_message : 'msg ctx -> 'state -> src:int -> 'msg -> 'state;
}

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  local_steps : int array;  (** per node *)
  sent_by : int array;
      (** per-node message sends — counted like [messages_sent] (before
          drop/partition filtering), timers excluded *)
  delivered_to : int array;
      (** per-node message deliveries, timers excluded *)
  finish_time : float;
  events : int;
}

val total_local_steps : metrics -> int
val max_local_steps : metrics -> int

type result = {
  decisions : string option array;
  halted : bool array;
  metrics : metrics;
}

val run :
  ?config:'m config -> Topology.t -> ('s, 'm) algorithm -> result
(** Simulate until quiescence (or the safety horizon). Crashed and
    halted nodes neither send nor receive. *)

val pp_metrics : Format.formatter -> metrics -> unit
