(** The serving engine: bounded admission queue, per-request budgets and
    deadlines, dispatch through the memo caches, metrics.

    Single-threaded and deterministic: requests drain in FIFO order and
    the clock is injectable, so timeout behaviour and latency accounting
    reproduce exactly under test. Total over arbitrary input — a
    malformed or exploding request yields a structured error response,
    never a crash. *)

type config = {
  caching : bool;
  cache_capacity : int;  (** entries per LRU cache *)
  queue_capacity : int;
  max_steps : int;  (** per-request step budget *)
  timeout : float option;  (** per-request deadline, seconds *)
  now : unit -> float;  (** injectable clock, seconds *)
  slow_log : int;  (** slowest requests kept with their span trees *)
  flight_capacity : int;  (** flight-recorder dossier ring; 0 disables *)
  flight_slowest : int;  (** slowest-k dossiers kept with span trees *)
}

val default_config : config
(** caching on, 256-entry caches, queue of 64, 100k steps, no timeout,
    [Unix.gettimeofday], 5-entry slow log, 512-dossier flight ring with
    slowest-k of 8. *)

val config_to_line : config -> string
(** Canonical single-line JSON rendering of every behaviour-shaping
    field ([now] excluded — it is process wiring, not behaviour). This
    is what dossiers embed, so [gp replay] can rebuild the exact
    server a request ran under. *)

val config_of_line : string -> (config, string) result
(** Inverse of {!config_to_line}; missing fields take their
    {!default_config} values and [now] is always the default clock. *)

val config_fingerprint : config -> string
(** Digest of {!config_to_line} — dossiers carry it as [config_fp]. *)

type t

val create :
  ?config:config -> declare_standard:(Gp_concepts.Registry.t -> unit) -> unit -> t
(** [declare_standard] populates the server's shared registry (and any
    per-request sandbox) with the standard world. *)

val config : t -> config
val metrics : t -> Metrics.t

val flight : t -> Gp_telemetry.Recorder.t option
(** The flight recorder, when [config.flight_capacity > 0]. Every
    request served — including unparseable lines — leaves a dossier;
    error/over-budget/timeout and slowest-k dossiers additionally retain
    their span tree and metric deltas. Queue-full rejections are
    admission events, not served requests, and leave no dossier. *)

val registry : t -> Gp_concepts.Registry.t
val caches : t -> Dispatch.caches
val cache_stats : t -> Lru.stats list
val clear_caches : t -> unit
val queue_length : t -> int

val handle :
  ?id:int -> ?context:Gp_telemetry.Context.t -> t -> Request.t ->
  Request.response
(** Process one request to completion, bypassing the queue. Never
    raises. When a telemetry sink is installed
    ([Gp_telemetry.Tel.install]) each request runs under a
    [service.request] root span and feeds the slow-request log; the
    response is identical either way. [context], when given and
    non-{!Gp_telemetry.Context.none}, is the inbound distributed trace
    context — the root span is stamped with [trace]/[parent_span]
    attributes so this node's service trace joins the cluster-wide
    tree. *)

val submit : t -> Request.t -> [ `Admitted of int | `Rejected of Request.response ]
(** Admission control: a full queue rejects with a [Queue_full]
    response immediately. *)

val drain : t -> Request.response list
(** Serve everything queued, FIFO. *)

val process_burst : t -> Request.t list -> Request.response list
(** Submit the whole list as one burst, then drain; responses in request
    order. Requests beyond the queue capacity come back [Queue_full] —
    this is the admission-control test path. *)

val process : t -> Request.t list -> Request.response list
(** Steady-state driver: drains whenever the queue fills, so every
    request is served; responses in request order. *)

val serve_line : t -> string -> Request.response option
(** Decode and serve one wire line ([None] for a blank line). *)

val serve_channel : t -> in_channel -> out_channel -> int
(** Serve request lines from a channel until EOF, writing one response
    line each; returns the number of responses written. *)

val report : t -> string
(** The metrics report including cache hit-ratio tables. *)

val report_json : t -> string
(** Machine-readable twin of {!report}: totals, cache stats, and the
    full metric-registry dump ({!Metrics.report_json}). *)

type slow_entry = {
  se_id : int;
  se_kind : string;
  se_ns : float;  (** root-span duration *)
  se_spans : Gp_telemetry.Trace.span list;  (** the request's span tree *)
}

val slow_requests : t -> slow_entry list
(** The [config.slow_log] slowest requests seen so far, slowest first.
    Populated only while a telemetry sink is installed. *)

val pp_slow : Format.formatter -> slow_entry list -> unit
(** Render the slow-request log as indented span trees. *)
