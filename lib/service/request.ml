(* The request/response IR of the serving layer.

   Each request names one of the toolchain's five one-shot pipelines plus
   the propagation-closure query that backs them. Responses are total: a
   request either produces a typed payload or a *structured* error — the
   dispatcher never lets an exception escape, because a malformed request
   must not take the server down. *)

type t =
  | Check of {
      concept : string;
      types : string list;
      nominal : bool;
      defs : string option; (* extra .gpc declarations, checked in a sandbox *)
    }
  | Parse of { source : string } (* a .gpc definitions file *)
  | Lint of { source : string } (* a program in the STLlint surface syntax *)
  | Optimize of { expr : string; certified_only : bool }
  | Prove of { theory : string; instance : string option }
  | Closure of { concept : string; types : string list }
  (* The numeric kinds ship only (structure, n, seed): generation is
     deterministic per triple, so server and replayer regenerate the
     identical matrix and fingerprints stay comparable across
     processes. *)
  | Matvec of { structure : string; n : int; seed : int }
  | Matmul of { structure : string; n : int; seed : int }
  | Solve of { structure : string; n : int; seed : int }

type kind =
  | Kcheck
  | Kparse
  | Klint
  | Koptimize
  | Kprove
  | Kclosure
  | Kmatvec
  | Kmatmul
  | Ksolve

let kind = function
  | Check _ -> Kcheck
  | Parse _ -> Kparse
  | Lint _ -> Klint
  | Optimize _ -> Koptimize
  | Prove _ -> Kprove
  | Closure _ -> Kclosure
  | Matvec _ -> Kmatvec
  | Matmul _ -> Kmatmul
  | Solve _ -> Ksolve

let all_kinds =
  [ Kcheck; Kparse; Klint; Koptimize; Kprove; Kclosure; Kmatvec; Kmatmul;
    Ksolve ]

let kind_name = function
  | Kcheck -> "check"
  | Kparse -> "parse"
  | Klint -> "lint"
  | Koptimize -> "optimize"
  | Kprove -> "prove"
  | Kclosure -> "closure"
  | Kmatvec -> "matvec"
  | Kmatmul -> "matmul"
  | Ksolve -> "solve"

let kind_of_name = function
  | "check" -> Some Kcheck
  | "parse" -> Some Kparse
  | "lint" -> Some Klint
  | "optimize" -> Some Koptimize
  | "prove" -> Some Kprove
  | "closure" -> Some Kclosure
  | "matvec" -> Some Kmatvec
  | "matmul" -> Some Kmatmul
  | "solve" -> Some Ksolve
  | _ -> None

(* Decimal int rendering without the [string_of_int] intermediate. The
   digit loop is top-level: a local [let rec] capturing [b] would be a
   fresh closure allocation per rendered int. *)
let rec add_digits b n =
  if n <> 0 then begin
    add_digits b (n / 10);
    Buffer.add_char b (Char.unsafe_chr (48 + abs (n mod 10)))
  end

let add_int b i =
  if i = 0 then Buffer.add_char b '0'
  else begin
    if i < 0 then Buffer.add_char b '-';
    add_digits b (if i > 0 then -i else i)
  end

let add_bool b v = Buffer.add_string b (if v then "true" else "false")

(* A canonical one-line rendering. Long sources are represented by their
   digest, which is exactly what the content-keyed caches want; it also
   makes workload fingerprints cheap. Rendered through one reused scratch
   buffer — [key] is on the per-request dispatch path. *)
let key_buf = Buffer.create 128

(* top-level loop rather than List.iter: no per-call closure *)
let rec add_sep_rest b sep = function
  | [] -> ()
  | s :: rest ->
    Buffer.add_char b sep;
    Buffer.add_string b s;
    add_sep_rest b sep rest

let add_comma_list b = function
  | [] -> ()
  | x :: xs ->
    Buffer.add_string b x;
    add_sep_rest b ',' xs

let add_digest b s = Buffer.add_string b (Digest.to_hex (Digest.string s))

let key req =
  let b = key_buf in
  Buffer.clear b;
  (match req with
  | Check { concept; types; nominal; defs } ->
    Buffer.add_string b "check|";
    Buffer.add_string b concept;
    Buffer.add_char b '|';
    add_comma_list b types;
    Buffer.add_char b '|';
    add_bool b nominal;
    Buffer.add_char b '|';
    (match defs with None -> Buffer.add_char b '-' | Some d -> add_digest b d)
  | Parse { source } ->
    Buffer.add_string b "parse|";
    add_digest b source
  | Lint { source } ->
    Buffer.add_string b "lint|";
    add_digest b source
  | Optimize { expr; certified_only } ->
    Buffer.add_string b "optimize|";
    add_bool b certified_only;
    Buffer.add_char b '|';
    Buffer.add_string b expr
  | Prove { theory; instance } ->
    Buffer.add_string b "prove|";
    Buffer.add_string b theory;
    Buffer.add_char b '|';
    Buffer.add_string b (Option.value ~default:"*" instance)
  | Closure { concept; types } ->
    Buffer.add_string b "closure|";
    Buffer.add_string b concept;
    Buffer.add_char b '|';
    add_comma_list b types
  | Matvec { structure; n; seed } ->
    Buffer.add_string b "matvec|";
    Buffer.add_string b structure;
    Buffer.add_char b '|';
    add_int b n;
    Buffer.add_char b '|';
    add_int b seed
  | Matmul { structure; n; seed } ->
    Buffer.add_string b "matmul|";
    Buffer.add_string b structure;
    Buffer.add_char b '|';
    add_int b n;
    Buffer.add_char b '|';
    add_int b seed
  | Solve { structure; n; seed } ->
    Buffer.add_string b "solve|";
    Buffer.add_string b structure;
    Buffer.add_char b '|';
    add_int b n;
    Buffer.add_char b '|';
    add_int b seed);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type error_code =
  | Bad_request (* unparseable request line / unknown kind / missing field *)
  | Parse_failure (* bad .gpc, lint program or expression inside a request *)
  | Unknown_name (* unknown concept, theory or instance *)
  | Over_budget (* per-request step budget exhausted *)
  | Timeout (* per-request deadline exceeded *)
  | Queue_full (* admission control rejected the request *)
  | Internal (* unexpected exception; the server survives and reports it *)

let error_code_name = function
  | Bad_request -> "bad-request"
  | Parse_failure -> "parse-failure"
  | Unknown_name -> "unknown-name"
  | Over_budget -> "over-budget"
  | Timeout -> "timeout"
  | Queue_full -> "queue-full"
  | Internal -> "internal"

type error = { code : error_code; detail : string }

type payload =
  | Checked of { ok : bool; failures : int; warnings : int; report : string }
  | Parsed of { items : int; concepts : int; models : int }
  | Linted of {
      errors : int;
      warnings : int;
      suggestions : int;
      messages : string list;
    }
  | Optimized of {
      output : string;
      steps : int;
      ops_before : int;
      ops_after : int;
    }
  | Proved of { checked : int; failed : int }
  | Closed of { size : int; obligations : string list }
  | Computed of {
      kernel : string; (* overload candidate that served the request *)
      detected : string; (* structure the detector classified *)
      n : int;
      steps : int; (* exact kernel step count, also the budget charge *)
      checksum : string; (* digest of the result's IEEE bit patterns *)
    }

type response = {
  rsp_id : int;
  rsp_kind : kind option; (* [None] when the request line did not parse *)
  rsp_result : (payload, error) result;
  rsp_cached : bool; (* served from a memo cache *)
  rsp_steps : int; (* budget steps charged *)
}

let ok rsp = Result.is_ok rsp.rsp_result

(* Equality of the part the client observes — ids, cache provenance and
   step accounting excluded. The cache-transparency property tests compare
   exactly this. *)
let result_equal (a : response) (b : response) =
  a.rsp_kind = b.rsp_kind && a.rsp_result = b.rsp_result

(* A canonical rendering of exactly the fields [result_equal] compares —
   kind plus the full payload or error — so equal fingerprints mean
   client-observably equal responses. Ids, cache provenance and step
   accounting are excluded on purpose: they vary with cache state, not
   with the request's meaning, and replay must not flag them. *)
let add_nl_list b = function
  | [] -> ()
  | x :: xs ->
    Buffer.add_string b x;
    add_sep_rest b '\n' xs

let response_canonical_into b (r : response) =
  (* [Buffer.add_string b] spelled out at each site: binding it as a
     local [add] is a partial application, i.e. one closure per call *)
  Buffer.add_string b
    (match r.rsp_kind with None -> "invalid" | Some k -> kind_name k);
  (match r.rsp_result with
  | Ok p -> (
    Buffer.add_string b "|ok|";
    match p with
    | Checked { ok; failures; warnings; report } ->
      Buffer.add_string b "checked|";
      add_bool b ok;
      Buffer.add_char b '|';
      add_int b failures;
      Buffer.add_char b '|';
      add_int b warnings;
      Buffer.add_char b '|';
      Buffer.add_string b report
    | Parsed { items; concepts; models } ->
      Buffer.add_string b "parsed|";
      add_int b items;
      Buffer.add_char b '|';
      add_int b concepts;
      Buffer.add_char b '|';
      add_int b models
    | Linted { errors; warnings; suggestions; messages } ->
      Buffer.add_string b "linted|";
      add_int b errors;
      Buffer.add_char b '|';
      add_int b warnings;
      Buffer.add_char b '|';
      add_int b suggestions;
      Buffer.add_char b '|';
      add_nl_list b messages
    | Optimized { output; steps; ops_before; ops_after } ->
      Buffer.add_string b "optimized|";
      Buffer.add_string b output;
      Buffer.add_char b '|';
      add_int b steps;
      Buffer.add_char b '|';
      add_int b ops_before;
      Buffer.add_char b '|';
      add_int b ops_after
    | Proved { checked; failed } ->
      Buffer.add_string b "proved|";
      add_int b checked;
      Buffer.add_char b '|';
      add_int b failed
    | Closed { size; obligations } ->
      Buffer.add_string b "closed|";
      add_int b size;
      Buffer.add_char b '|';
      add_nl_list b obligations
    | Computed { kernel; detected; n; steps; checksum } ->
      Buffer.add_string b "computed|";
      Buffer.add_string b kernel;
      Buffer.add_char b '|';
      Buffer.add_string b detected;
      Buffer.add_char b '|';
      add_int b n;
      Buffer.add_char b '|';
      add_int b steps;
      Buffer.add_char b '|';
      Buffer.add_string b checksum)
  | Error e ->
    Buffer.add_string b "|error|";
    Buffer.add_string b (error_code_name e.code);
    Buffer.add_string b "|";
    Buffer.add_string b e.detail)

let response_canonical (r : response) =
  let b = Buffer.create 128 in
  response_canonical_into b r;
  Buffer.contents b

(* The fingerprint streams the canonical form into the digest: the
   canonical bytes land in a reused scratch buffer and are digested in
   place with [Digest.subbytes] — the canonical *string* is never built.
   The qcheck equivalence suite pins this to
   [Digest.string (response_canonical r)] across every payload and error
   shape. *)
let fp_buf = Buffer.create 512

let fp_bytes = ref (Bytes.create 512)

let response_fingerprint r =
  Buffer.clear fp_buf;
  response_canonical_into fp_buf r;
  let len = Buffer.length fp_buf in
  if Bytes.length !fp_bytes < len then
    fp_bytes := Bytes.create (max len (2 * Bytes.length !fp_bytes));
  Buffer.blit fp_buf 0 !fp_bytes 0 len;
  Digest.to_hex (Digest.subbytes !fp_bytes 0 len)

let pp_payload ppf = function
  | Checked { ok; failures; warnings; _ } ->
    Fmt.pf ppf "checked ok=%b failures=%d warnings=%d" ok failures warnings
  | Parsed { items; concepts; models } ->
    Fmt.pf ppf "parsed items=%d concepts=%d models=%d" items concepts models
  | Linted { errors; warnings; suggestions; _ } ->
    Fmt.pf ppf "linted errors=%d warnings=%d suggestions=%d" errors warnings
      suggestions
  | Optimized { output; steps; ops_before; ops_after } ->
    Fmt.pf ppf "optimized %S steps=%d ops %d->%d" output steps ops_before
      ops_after
  | Proved { checked; failed } ->
    Fmt.pf ppf "proved checked=%d failed=%d" checked failed
  | Closed { size; _ } -> Fmt.pf ppf "closure size=%d" size
  | Computed { kernel; detected; n; steps; _ } ->
    Fmt.pf ppf "computed kernel=%s detected=%s n=%d steps=%d" kernel detected
      n steps

let pp_error ppf e =
  Fmt.pf ppf "error %s: %s" (error_code_name e.code) e.detail

let pp_response ppf r =
  Fmt.pf ppf "#%d %s%s %a" r.rsp_id
    (match r.rsp_kind with None -> "?" | Some k -> kind_name k)
    (if r.rsp_cached then " (cached)" else "")
    (Fmt.result ~ok:pp_payload ~error:pp_error)
    r.rsp_result
