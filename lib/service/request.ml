(* The request/response IR of the serving layer.

   Each request names one of the toolchain's five one-shot pipelines plus
   the propagation-closure query that backs them. Responses are total: a
   request either produces a typed payload or a *structured* error — the
   dispatcher never lets an exception escape, because a malformed request
   must not take the server down. *)

type t =
  | Check of {
      concept : string;
      types : string list;
      nominal : bool;
      defs : string option; (* extra .gpc declarations, checked in a sandbox *)
    }
  | Parse of { source : string } (* a .gpc definitions file *)
  | Lint of { source : string } (* a program in the STLlint surface syntax *)
  | Optimize of { expr : string; certified_only : bool }
  | Prove of { theory : string; instance : string option }
  | Closure of { concept : string; types : string list }
  (* The numeric kinds ship only (structure, n, seed): generation is
     deterministic per triple, so server and replayer regenerate the
     identical matrix and fingerprints stay comparable across
     processes. *)
  | Matvec of { structure : string; n : int; seed : int }
  | Matmul of { structure : string; n : int; seed : int }
  | Solve of { structure : string; n : int; seed : int }

type kind =
  | Kcheck
  | Kparse
  | Klint
  | Koptimize
  | Kprove
  | Kclosure
  | Kmatvec
  | Kmatmul
  | Ksolve

let kind = function
  | Check _ -> Kcheck
  | Parse _ -> Kparse
  | Lint _ -> Klint
  | Optimize _ -> Koptimize
  | Prove _ -> Kprove
  | Closure _ -> Kclosure
  | Matvec _ -> Kmatvec
  | Matmul _ -> Kmatmul
  | Solve _ -> Ksolve

let all_kinds =
  [ Kcheck; Kparse; Klint; Koptimize; Kprove; Kclosure; Kmatvec; Kmatmul;
    Ksolve ]

let kind_name = function
  | Kcheck -> "check"
  | Kparse -> "parse"
  | Klint -> "lint"
  | Koptimize -> "optimize"
  | Kprove -> "prove"
  | Kclosure -> "closure"
  | Kmatvec -> "matvec"
  | Kmatmul -> "matmul"
  | Ksolve -> "solve"

let kind_of_name = function
  | "check" -> Some Kcheck
  | "parse" -> Some Kparse
  | "lint" -> Some Klint
  | "optimize" -> Some Koptimize
  | "prove" -> Some Kprove
  | "closure" -> Some Kclosure
  | "matvec" -> Some Kmatvec
  | "matmul" -> Some Kmatmul
  | "solve" -> Some Ksolve
  | _ -> None

(* A canonical one-line rendering. Long sources are represented by their
   digest, which is exactly what the content-keyed caches want; it also
   makes workload fingerprints cheap. *)
let key req =
  let dgst s = Digest.to_hex (Digest.string s) in
  match req with
  | Check { concept; types; nominal; defs } ->
    Printf.sprintf "check|%s|%s|%b|%s" concept (String.concat "," types)
      nominal
      (match defs with None -> "-" | Some d -> dgst d)
  | Parse { source } -> "parse|" ^ dgst source
  | Lint { source } -> "lint|" ^ dgst source
  | Optimize { expr; certified_only } ->
    Printf.sprintf "optimize|%b|%s" certified_only expr
  | Prove { theory; instance } ->
    Printf.sprintf "prove|%s|%s" theory (Option.value ~default:"*" instance)
  | Closure { concept; types } ->
    Printf.sprintf "closure|%s|%s" concept (String.concat "," types)
  | Matvec { structure; n; seed } ->
    Printf.sprintf "matvec|%s|%d|%d" structure n seed
  | Matmul { structure; n; seed } ->
    Printf.sprintf "matmul|%s|%d|%d" structure n seed
  | Solve { structure; n; seed } ->
    Printf.sprintf "solve|%s|%d|%d" structure n seed

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type error_code =
  | Bad_request (* unparseable request line / unknown kind / missing field *)
  | Parse_failure (* bad .gpc, lint program or expression inside a request *)
  | Unknown_name (* unknown concept, theory or instance *)
  | Over_budget (* per-request step budget exhausted *)
  | Timeout (* per-request deadline exceeded *)
  | Queue_full (* admission control rejected the request *)
  | Internal (* unexpected exception; the server survives and reports it *)

let error_code_name = function
  | Bad_request -> "bad-request"
  | Parse_failure -> "parse-failure"
  | Unknown_name -> "unknown-name"
  | Over_budget -> "over-budget"
  | Timeout -> "timeout"
  | Queue_full -> "queue-full"
  | Internal -> "internal"

type error = { code : error_code; detail : string }

type payload =
  | Checked of { ok : bool; failures : int; warnings : int; report : string }
  | Parsed of { items : int; concepts : int; models : int }
  | Linted of {
      errors : int;
      warnings : int;
      suggestions : int;
      messages : string list;
    }
  | Optimized of {
      output : string;
      steps : int;
      ops_before : int;
      ops_after : int;
    }
  | Proved of { checked : int; failed : int }
  | Closed of { size : int; obligations : string list }
  | Computed of {
      kernel : string; (* overload candidate that served the request *)
      detected : string; (* structure the detector classified *)
      n : int;
      steps : int; (* exact kernel step count, also the budget charge *)
      checksum : string; (* digest of the result's IEEE bit patterns *)
    }

type response = {
  rsp_id : int;
  rsp_kind : kind option; (* [None] when the request line did not parse *)
  rsp_result : (payload, error) result;
  rsp_cached : bool; (* served from a memo cache *)
  rsp_steps : int; (* budget steps charged *)
}

let ok rsp = Result.is_ok rsp.rsp_result

(* Equality of the part the client observes — ids, cache provenance and
   step accounting excluded. The cache-transparency property tests compare
   exactly this. *)
let result_equal (a : response) (b : response) =
  a.rsp_kind = b.rsp_kind && a.rsp_result = b.rsp_result

(* A canonical rendering of exactly the fields [result_equal] compares —
   kind plus the full payload or error — so equal fingerprints mean
   client-observably equal responses. Ids, cache provenance and step
   accounting are excluded on purpose: they vary with cache state, not
   with the request's meaning, and replay must not flag them. *)
let response_canonical (r : response) =
  let b = Buffer.create 128 in
  let add = Buffer.add_string b in
  add (match r.rsp_kind with None -> "invalid" | Some k -> kind_name k);
  (match r.rsp_result with
  | Ok p -> (
    add "|ok|";
    match p with
    | Checked { ok; failures; warnings; report } ->
      add (Printf.sprintf "checked|%b|%d|%d|%s" ok failures warnings report)
    | Parsed { items; concepts; models } ->
      add (Printf.sprintf "parsed|%d|%d|%d" items concepts models)
    | Linted { errors; warnings; suggestions; messages } ->
      add
        (Printf.sprintf "linted|%d|%d|%d|%s" errors warnings suggestions
           (String.concat "\n" messages))
    | Optimized { output; steps; ops_before; ops_after } ->
      add
        (Printf.sprintf "optimized|%s|%d|%d|%d" output steps ops_before
           ops_after)
    | Proved { checked; failed } ->
      add (Printf.sprintf "proved|%d|%d" checked failed)
    | Closed { size; obligations } ->
      add (Printf.sprintf "closed|%d|%s" size (String.concat "\n" obligations))
    | Computed { kernel; detected; n; steps; checksum } ->
      add
        (Printf.sprintf "computed|%s|%s|%d|%d|%s" kernel detected n steps
           checksum))
  | Error e ->
    add "|error|";
    add (error_code_name e.code);
    add "|";
    add e.detail);
  Buffer.contents b

let response_fingerprint r =
  Digest.to_hex (Digest.string (response_canonical r))

let pp_payload ppf = function
  | Checked { ok; failures; warnings; _ } ->
    Fmt.pf ppf "checked ok=%b failures=%d warnings=%d" ok failures warnings
  | Parsed { items; concepts; models } ->
    Fmt.pf ppf "parsed items=%d concepts=%d models=%d" items concepts models
  | Linted { errors; warnings; suggestions; _ } ->
    Fmt.pf ppf "linted errors=%d warnings=%d suggestions=%d" errors warnings
      suggestions
  | Optimized { output; steps; ops_before; ops_after } ->
    Fmt.pf ppf "optimized %S steps=%d ops %d->%d" output steps ops_before
      ops_after
  | Proved { checked; failed } ->
    Fmt.pf ppf "proved checked=%d failed=%d" checked failed
  | Closed { size; _ } -> Fmt.pf ppf "closure size=%d" size
  | Computed { kernel; detected; n; steps; _ } ->
    Fmt.pf ppf "computed kernel=%s detected=%s n=%d steps=%d" kernel detected
      n steps

let pp_error ppf e =
  Fmt.pf ppf "error %s: %s" (error_code_name e.code) e.detail

let pp_response ppf r =
  Fmt.pf ppf "#%d %s%s %a" r.rsp_id
    (match r.rsp_kind with None -> "?" | Some k -> kind_name k)
    (if r.rsp_cached then " (cached)" else "")
    (Fmt.result ~ok:pp_payload ~error:pp_error)
    r.rsp_result
