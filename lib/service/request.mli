(** The typed request/response IR of the serving layer.

    One constructor per pipeline the toolchain exposes (concept check,
    [.gpc] parse, lint, optimize, prove) plus the propagation-closure
    query that backs generic-signature checking. Responses are total:
    every request yields either a typed payload or a {e structured}
    error — malformed input must never kill the server. *)

type t =
  | Check of {
      concept : string;
      types : string list;
      nominal : bool;
      defs : string option;
          (** extra [.gpc] declarations loaded into a per-request sandbox
              registry, leaving the shared world untouched *)
    }
  | Parse of { source : string }  (** a [.gpc] definitions source *)
  | Lint of { source : string }  (** STLlint surface-syntax program *)
  | Optimize of { expr : string; certified_only : bool }
  | Prove of { theory : string; instance : string option }
      (** theory ∈ swo/monoid/group/ring/orders; [instance] restricts to
          one operator mapping (e.g. ["int\[+\]"]) *)
  | Closure of { concept : string; types : string list }
  | Matvec of { structure : string; n : int; seed : int }
      (** structure-aware [y = A·x]; the matrix is regenerated
          deterministically from [(structure, n, seed)] on both the
          server and the replayer *)
  | Matmul of { structure : string; n : int; seed : int }  (** [A·A] *)
  | Solve of { structure : string; n : int; seed : int }  (** [A·x = b] *)

type kind =
  | Kcheck
  | Kparse
  | Klint
  | Koptimize
  | Kprove
  | Kclosure
  | Kmatvec
  | Kmatmul
  | Ksolve

val kind : t -> kind
val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val key : t -> string
(** Canonical content key: embedded sources are digested, so equal keys
    mean observably equal requests. Used by the memo caches and by
    workload fingerprints. *)

(** {2 Responses} *)

type error_code =
  | Bad_request
  | Parse_failure
  | Unknown_name
  | Over_budget
  | Timeout
  | Queue_full
  | Internal

val error_code_name : error_code -> string

type error = { code : error_code; detail : string }

type payload =
  | Checked of { ok : bool; failures : int; warnings : int; report : string }
  | Parsed of { items : int; concepts : int; models : int }
  | Linted of {
      errors : int;
      warnings : int;
      suggestions : int;
      messages : string list;
    }
  | Optimized of {
      output : string;
      steps : int;
      ops_before : int;
      ops_after : int;
    }
  | Proved of { checked : int; failed : int }
  | Closed of { size : int; obligations : string list }
  | Computed of {
      kernel : string;
          (** name of the overload candidate that served the request,
              e.g. ["matvec.diagonal"] *)
      detected : string;  (** structure the detector classified *)
      n : int;
      steps : int;
          (** exact kernel step count; also the budget charge *)
      checksum : string;
          (** digest of the result's IEEE bit patterns — replay-stable *)
    }

type response = {
  rsp_id : int;
  rsp_kind : kind option;  (** [None] when the request line did not parse *)
  rsp_result : (payload, error) result;
  rsp_cached : bool;
  rsp_steps : int;
}

val ok : response -> bool

val result_equal : response -> response -> bool
(** Equality of what the client observes (kind and result); ids, cache
    provenance and step accounting excluded — the cache-transparency
    property compares exactly this. *)

val response_canonical : response -> string
(** Canonical rendering of exactly what {!result_equal} compares: kind
    plus the full payload or error, with id/cached/steps excluded.
    Equal strings iff [result_equal]. *)

val response_canonical_into : Buffer.t -> response -> unit
(** Append the canonical rendering to a caller-owned buffer;
    [response_canonical] is this into a fresh buffer. *)

val response_fingerprint : response -> string
(** Digest of {!response_canonical} — the equality flight-recorder
    replay asserts. Streamed: the canonical bytes are digested from a
    reused scratch buffer, the canonical string is never materialized;
    bit-identical to [Digest.string (response_canonical r)]. *)

val pp_payload : Format.formatter -> payload -> unit
val pp_error : Format.formatter -> error -> unit
val pp_response : Format.formatter -> response -> unit
