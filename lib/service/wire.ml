(* The wire format: one JSON object per line, hand-rolled against a small
   JSON subset (objects, arrays, strings with escapes, integers, floats,
   booleans, null). No JSON dependency ships in this tree, and the subset
   keeps the malformed-input surface small enough to test exhaustively.

   Requests:
     {"id":1,"kind":"check","concept":"Container","types":["varray<int>"]}
     {"kind":"lint","source":"vector<int> v;\n..."}
     {"kind":"optimize","expr":"x*1+0","certified_only":true}
     {"kind":"prove","theory":"group","instance":"int[+]"}
     {"kind":"closure","concept":"IncidenceGraph","types":["adjacency_list"]}
     {"kind":"parse","source":"concept Foo<T> { }"}

   Responses mirror the typed IR: id, kind, ok/error, payload fields,
   cached flag and step count. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "at %d: expected %c, found %c" c.pos ch x
  | None -> fail "at %d: expected %c, found end of input" c.pos ch

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          (* \uXXXX: decode the BMP code point to UTF-8 *)
          if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          let cp =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape %s" hex
          in
          c.pos <- c.pos + 4;
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail "bad escape \\%c" ch);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S" s)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at %d: bad literal" c.pos

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some '{' ->
    advance c;
    parse_obj c []
  | Some '[' ->
    advance c;
    parse_arr c []
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "at %d: unexpected %c" c.pos ch

and parse_obj c acc =
  skip_ws c;
  match peek c with
  | Some '}' ->
    advance c;
    Obj (List.rev acc)
  | _ ->
    skip_ws c;
    expect c '"';
    let key = parse_string_body c in
    skip_ws c;
    expect c ':';
    let v = parse_value c in
    skip_ws c;
    (match peek c with
    | Some ',' ->
      advance c;
      parse_obj c ((key, v) :: acc)
    | Some '}' ->
      advance c;
      Obj (List.rev ((key, v) :: acc))
    | _ -> fail "at %d: expected , or } in object" c.pos)

and parse_arr c acc =
  skip_ws c;
  match peek c with
  | Some ']' ->
    advance c;
    Arr (List.rev acc)
  | _ ->
    let v = parse_value c in
    skip_ws c;
    (match peek c with
    | Some ',' ->
      advance c;
      parse_arr c (v :: acc)
    | Some ']' ->
      advance c;
      Arr (List.rev (v :: acc))
    | _ -> fail "at %d: expected , or ] in array" c.pos)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with
  | Some ch -> fail "at %d: trailing %c after value" c.pos ch
  | None -> ());
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let field fields name = List.assoc_opt name fields

let str_field fields name =
  match field fields name with
  | Some (Str s) -> Ok s
  | Some _ -> Result.error (Printf.sprintf "field %S must be a string" name)
  | None -> Result.error (Printf.sprintf "missing field %S" name)

let opt_str_field fields name =
  match field fields name with
  | Some (Str s) -> Ok (Some s)
  | None | Some Null -> Ok None
  | Some _ -> Result.error (Printf.sprintf "field %S must be a string" name)

let bool_field ~default fields name =
  match field fields name with
  | Some (Bool b) -> Ok b
  | None -> Ok default
  | Some _ -> Result.error (Printf.sprintf "field %S must be a boolean" name)

let int_field ?default fields name =
  match (field fields name, default) with
  | Some (Int i), _ -> Ok i
  | None, Some d -> Ok d
  | None, None -> Result.error (Printf.sprintf "missing field %S" name)
  | Some _, _ -> Result.error (Printf.sprintf "field %S must be an integer" name)

let str_list_field fields name =
  match field fields name with
  | Some (Arr vs) ->
    List.fold_left
      (fun acc v ->
        match (acc, v) with
        | Ok xs, Str s -> Ok (xs @ [ s ])
        | Ok _, _ ->
          Result.error
            (Printf.sprintf "field %S must be an array of strings" name)
        | (Error _ as e), _ -> e)
      (Ok []) vs
  | Some _ ->
    Result.error (Printf.sprintf "field %S must be an array of strings" name)
  | None -> Result.error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let request_of_fields fields =
  let* kind = str_field fields "kind" in
  match Request.kind_of_name kind with
  | None -> Result.error (Printf.sprintf "unknown request kind %S" kind)
  | Some Request.Kcheck ->
    let* concept = str_field fields "concept" in
    let* types = str_list_field fields "types" in
    let* nominal = bool_field ~default:false fields "nominal" in
    let* defs = opt_str_field fields "defs" in
    Ok (Request.Check { concept; types; nominal; defs })
  | Some Request.Kparse ->
    let* source = str_field fields "source" in
    Ok (Request.Parse { source })
  | Some Request.Klint ->
    let* source = str_field fields "source" in
    Ok (Request.Lint { source })
  | Some Request.Koptimize ->
    let* expr = str_field fields "expr" in
    let* certified_only = bool_field ~default:false fields "certified_only" in
    Ok (Request.Optimize { expr; certified_only })
  | Some Request.Kprove ->
    let* theory = str_field fields "theory" in
    let* instance = opt_str_field fields "instance" in
    Ok (Request.Prove { theory; instance })
  | Some Request.Kclosure ->
    let* concept = str_field fields "concept" in
    let* types = str_list_field fields "types" in
    Ok (Request.Closure { concept; types })
  | Some (Request.Kmatvec | Request.Kmatmul | Request.Ksolve) ->
    let* structure = str_field fields "structure" in
    let* n = int_field fields "n" in
    let* seed = int_field ~default:0 fields "seed" in
    Ok
      (match Request.kind_of_name kind with
      | Some Request.Kmatvec -> Request.Matvec { structure; n; seed }
      | Some Request.Kmatmul -> Request.Matmul { structure; n; seed }
      | _ -> Request.Solve { structure; n; seed })

let request_of_line line =
  match parse line with
  | exception Error m -> Result.error ("bad request line: " ^ m)
  | Obj fields -> (
    let id =
      match field fields "id" with Some (Int i) -> Some i | _ -> None
    in
    match request_of_fields fields with
    | Ok req -> Ok (id, req)
    | Error m -> Result.error ("bad request: " ^ m))
  | _ -> Result.error "bad request line: expected a JSON object"

let request_to_line ?id req =
  let base =
    match id with None -> [] | Some i -> [ ("id", Int i) ]
  in
  let fields =
    match req with
    | Request.Check { concept; types; nominal; defs } ->
      [ ("kind", Str "check"); ("concept", Str concept);
        ("types", Arr (List.map (fun s -> Str s) types));
        ("nominal", Bool nominal) ]
      @ (match defs with None -> [] | Some d -> [ ("defs", Str d) ])
    | Request.Parse { source } ->
      [ ("kind", Str "parse"); ("source", Str source) ]
    | Request.Lint { source } ->
      [ ("kind", Str "lint"); ("source", Str source) ]
    | Request.Optimize { expr; certified_only } ->
      [ ("kind", Str "optimize"); ("expr", Str expr);
        ("certified_only", Bool certified_only) ]
    | Request.Prove { theory; instance } ->
      [ ("kind", Str "prove"); ("theory", Str theory) ]
      @ (match instance with None -> [] | Some i -> [ ("instance", Str i) ])
    | Request.Closure { concept; types } ->
      [ ("kind", Str "closure"); ("concept", Str concept);
        ("types", Arr (List.map (fun s -> Str s) types)) ]
    | Request.Matvec { structure; n; seed } ->
      [ ("kind", Str "matvec"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
    | Request.Matmul { structure; n; seed } ->
      [ ("kind", Str "matmul"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
    | Request.Solve { structure; n; seed } ->
      [ ("kind", Str "solve"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
  in
  to_string (Obj (base @ fields))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let payload_fields = function
  | Request.Checked { ok; failures; warnings; report } ->
    [ ("ok", Bool ok); ("failures", Int failures); ("warnings", Int warnings);
      ("report", Str report) ]
  | Request.Parsed { items; concepts; models } ->
    [ ("items", Int items); ("concepts", Int concepts); ("models", Int models) ]
  | Request.Linted { errors; warnings; suggestions; messages } ->
    [ ("errors", Int errors); ("warnings", Int warnings);
      ("suggestions", Int suggestions);
      ("messages", Arr (List.map (fun m -> Str m) messages)) ]
  (* "rewrite_steps", not "steps": the envelope already has a "steps"
     field for the budget charge *)
  | Request.Optimized { output; steps; ops_before; ops_after } ->
    [ ("output", Str output); ("rewrite_steps", Int steps);
      ("ops_before", Int ops_before); ("ops_after", Int ops_after) ]
  | Request.Proved { checked; failed } ->
    [ ("checked", Int checked); ("failed", Int failed) ]
  | Request.Closed { size; obligations } ->
    [ ("size", Int size);
      ("obligations", Arr (List.map (fun o -> Str o) obligations)) ]
  (* "kernel_steps" for the same reason as "rewrite_steps" above *)
  | Request.Computed { kernel; detected; n; steps; checksum } ->
    [ ("kernel", Str kernel); ("detected", Str detected); ("n", Int n);
      ("kernel_steps", Int steps); ("checksum", Str checksum) ]

let response_to_line (r : Request.response) =
  let status_fields =
    match r.Request.rsp_result with
    | Ok payload -> ("status", Str "ok") :: payload_fields payload
    | Error e ->
      [ ("status", Str "error");
        ("error", Str (Request.error_code_name e.Request.code));
        ("detail", Str e.Request.detail) ]
  in
  to_string
    (Obj
       ([ ("id", Int r.Request.rsp_id);
          ( "kind",
            match r.Request.rsp_kind with
            | Some k -> Str (Request.kind_name k)
            | None -> Null ) ]
       @ status_fields
       @ [ ("cached", Bool r.Request.rsp_cached);
           ("steps", Int r.Request.rsp_steps) ]))
