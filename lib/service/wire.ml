(* The wire format: one JSON object per line, hand-rolled against a small
   JSON subset (objects, arrays, strings with escapes, integers, floats,
   booleans, null). No JSON dependency ships in this tree, and the subset
   keeps the malformed-input surface small enough to test exhaustively.

   Requests:
     {"id":1,"kind":"check","concept":"Container","types":["varray<int>"]}
     {"kind":"lint","source":"vector<int> v;\n..."}
     {"kind":"optimize","expr":"x*1+0","certified_only":true}
     {"kind":"prove","theory":"group","instance":"int[+]"}
     {"kind":"closure","concept":"IncidenceGraph","types":["adjacency_list"]}
     {"kind":"parse","source":"concept Foo<T> { }"}

   Responses mirror the typed IR: id, kind, ok/error, payload fields,
   cached flag and step count. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { mutable src : string; mutable pos : int }

(* [has]/[cur] instead of an option-returning peek: the cursor helpers
   sit under every character of every request, and a [Some ch] per call
   is two words of garbage each — the single largest allocation on the
   pre-refactor parse path. *)
let has c = c.pos < String.length c.src

let cur c = String.unsafe_get c.src c.pos

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  if has c then
    match cur c with
    | ' ' | '\t' | '\r' | '\n' ->
      advance c;
      skip_ws c
    | _ -> ()

let expect c ch =
  if has c then begin
    let x = cur c in
    if x = ch then advance c
    else fail "at %d: expected %c, found %c" c.pos ch x
  end
  else fail "at %d: expected %c, found end of input" c.pos ch

(* One scratch buffer serves every string in a parse: string parsing never
   nests (the contents are taken before the next token is touched), so the
   buffer is always drained before it is reused. *)
let strbuf = Buffer.create 256

(* The loop is a top-level [let rec] on purpose: a local recursive
   function with free variables is a fresh closure allocation per call,
   which matters on a path that runs for every escaped string. *)
let rec escaped_chars_into buf c =
  if not (has c) then fail "unterminated string"
  else
    match cur c with
    | '"' -> advance c
    | '\\' ->
      advance c;
      if not (has c) then fail "unterminated escape";
      let ch = cur c in
      advance c;
      (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          (* \uXXXX: decode the BMP code point to UTF-8 *)
          if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          let cp =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape %s" hex
          in
          c.pos <- c.pos + 4;
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
      | _ -> fail "bad escape \\%c" ch);
      escaped_chars_into buf c
    | ch ->
      advance c;
      Buffer.add_char buf ch;
      escaped_chars_into buf c

let parse_string_body_into buf c =
  escaped_chars_into buf c;
  Buffer.contents buf

(* Escape-free strings — every string the server emits and virtually every
   one it receives — are a single [String.sub] of the line; only strings
   with escapes fall back to the scratch buffer. *)
let parse_string_body c =
  let src = c.src in
  let n = String.length src in
  let i = ref c.pos in
  while
    !i < n
    &&
    let ch = String.unsafe_get src !i in
    ch <> '"' && ch <> '\\'
  do
    incr i
  done;
  if !i < n && String.unsafe_get src !i = '"' then begin
    let s = String.sub src c.pos (!i - c.pos) in
    c.pos <- !i + 1;
    s
  end
  else begin
    Buffer.clear strbuf;
    Buffer.add_substring strbuf src c.pos (!i - c.pos);
    c.pos <- !i;
    parse_string_body_into strbuf c
  end

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number c =
  let start = c.pos in
  while has c && is_num_char (cur c) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S" s)

(* Compare a region of [src] against [name] in place — no substring.
   Shared by literal matching and the direct parser's key dispatch. *)
let rec region_eq_from src pos name len i =
  i = len
  || String.unsafe_get src (pos + i) = String.unsafe_get name i
     && region_eq_from src pos name len (i + 1)

let region_equals src pos len name =
  String.length name = len && region_eq_from src pos name len 0

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && region_eq_from c.src c.pos word n 0
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at %d: bad literal" c.pos

let rec parse_value c =
  skip_ws c;
  if not (has c) then fail "unexpected end of input"
  else
    match cur c with
    | '"' ->
      advance c;
      Str (parse_string_body c)
    | '{' ->
      advance c;
      parse_obj c []
    | '[' ->
      advance c;
      parse_arr c []
    | 't' -> parse_literal c "true" (Bool true)
    | 'f' -> parse_literal c "false" (Bool false)
    | 'n' -> parse_literal c "null" Null
    | '-' | '0' .. '9' -> parse_number c
    | ch -> fail "at %d: unexpected %c" c.pos ch

and parse_obj c acc =
  skip_ws c;
  if has c && cur c = '}' then begin
    advance c;
    Obj (List.rev acc)
  end
  else begin
    skip_ws c;
    let kpos = c.pos in
    expect c '"';
    let key = parse_string_body c in
    if List.mem_assoc key acc then
      fail "at %d: duplicate key %S in object" kpos key;
    skip_ws c;
    expect c ':';
    let v = parse_value c in
    skip_ws c;
    if has c && cur c = ',' then begin
      advance c;
      parse_obj c ((key, v) :: acc)
    end
    else if has c && cur c = '}' then begin
      advance c;
      Obj (List.rev ((key, v) :: acc))
    end
    else fail "at %d: expected , or } in object" c.pos
  end

and parse_arr c acc =
  skip_ws c;
  if has c && cur c = ']' then begin
    advance c;
    Arr (List.rev acc)
  end
  else begin
    let v = parse_value c in
    skip_ws c;
    if has c && cur c = ',' then begin
      advance c;
      parse_arr c (v :: acc)
    end
    else if has c && cur c = ']' then begin
      advance c;
      Arr (List.rev (v :: acc))
    end
    else fail "at %d: expected , or ] in array" c.pos
  end

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if has c then fail "at %d: trailing %c after value" c.pos (cur c);
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let hex_digits = "0123456789abcdef"

(* An indexed [for] loop rather than [String.iter f]: the closure passed
   to [iter] captures [buf] and is a fresh allocation per call on the
   steady-state render path. *)
let escape_into buf s =
  for i = 0 to String.length s - 1 do
    match String.unsafe_get s i with
    | '"' -> Buffer.add_string buf "\\\""
    | '\\' -> Buffer.add_string buf "\\\\"
    | '\n' -> Buffer.add_string buf "\\n"
    | '\t' -> Buffer.add_string buf "\\t"
    | '\r' -> Buffer.add_string buf "\\r"
    | c when Char.code c < 0x20 ->
      (* "\u00xx" — written without sprintf to stay allocation-free *)
      Buffer.add_string buf "\\u00";
      Buffer.add_char buf hex_digits.[Char.code c lsr 4];
      Buffer.add_char buf hex_digits.[Char.code c land 0xF]
    | c -> Buffer.add_char buf c
  done

(* Decimal int rendering without the [string_of_int] intermediate. The
   digits are emitted from a negative accumulator so [min_int] works;
   the digit loop is top-level so no closure is allocated per int. *)
let rec add_digits buf n =
  if n <> 0 then begin
    add_digits buf (n / 10);
    Buffer.add_char buf (Char.unsafe_chr (48 + abs (n mod 10)))
  end

let add_int buf i =
  if i = 0 then Buffer.add_char buf '0'
  else begin
    if i < 0 then Buffer.add_char buf '-';
    add_digits buf (if i > 0 then -i else i)
  end

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let field fields name = List.assoc_opt name fields

let str_field fields name =
  match field fields name with
  | Some (Str s) -> Ok s
  | Some _ -> Result.error (Printf.sprintf "field %S must be a string" name)
  | None -> Result.error (Printf.sprintf "missing field %S" name)

let opt_str_field fields name =
  match field fields name with
  | Some (Str s) -> Ok (Some s)
  | None | Some Null -> Ok None
  | Some _ -> Result.error (Printf.sprintf "field %S must be a string" name)

let bool_field ~default fields name =
  match field fields name with
  | Some (Bool b) -> Ok b
  | None -> Ok default
  | Some _ -> Result.error (Printf.sprintf "field %S must be a boolean" name)

let int_field ?default fields name =
  match (field fields name, default) with
  | Some (Int i), _ -> Ok i
  | None, Some d -> Ok d
  | None, None -> Result.error (Printf.sprintf "missing field %S" name)
  | Some _, _ -> Result.error (Printf.sprintf "field %S must be an integer" name)

let str_list_field fields name =
  match field fields name with
  | Some (Arr vs) ->
    List.fold_left
      (fun acc v ->
        match (acc, v) with
        | Ok xs, Str s -> Ok (xs @ [ s ])
        | Ok _, _ ->
          Result.error
            (Printf.sprintf "field %S must be an array of strings" name)
        | (Error _ as e), _ -> e)
      (Ok []) vs
  | Some _ ->
    Result.error (Printf.sprintf "field %S must be an array of strings" name)
  | None -> Result.error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let request_of_fields fields =
  let* kind = str_field fields "kind" in
  match Request.kind_of_name kind with
  | None -> Result.error (Printf.sprintf "unknown request kind %S" kind)
  | Some Request.Kcheck ->
    let* concept = str_field fields "concept" in
    let* types = str_list_field fields "types" in
    let* nominal = bool_field ~default:false fields "nominal" in
    let* defs = opt_str_field fields "defs" in
    Ok (Request.Check { concept; types; nominal; defs })
  | Some Request.Kparse ->
    let* source = str_field fields "source" in
    Ok (Request.Parse { source })
  | Some Request.Klint ->
    let* source = str_field fields "source" in
    Ok (Request.Lint { source })
  | Some Request.Koptimize ->
    let* expr = str_field fields "expr" in
    let* certified_only = bool_field ~default:false fields "certified_only" in
    Ok (Request.Optimize { expr; certified_only })
  | Some Request.Kprove ->
    let* theory = str_field fields "theory" in
    let* instance = opt_str_field fields "instance" in
    Ok (Request.Prove { theory; instance })
  | Some Request.Kclosure ->
    let* concept = str_field fields "concept" in
    let* types = str_list_field fields "types" in
    Ok (Request.Closure { concept; types })
  | Some (Request.Kmatvec | Request.Kmatmul | Request.Ksolve) ->
    let* structure = str_field fields "structure" in
    let* n = int_field fields "n" in
    let* seed = int_field ~default:0 fields "seed" in
    Ok
      (match Request.kind_of_name kind with
      | Some Request.Kmatvec -> Request.Matvec { structure; n; seed }
      | Some Request.Kmatmul -> Request.Matmul { structure; n; seed }
      | _ -> Request.Solve { structure; n; seed })

(* The AST decode path: parse the full [json] tree, then validate fields.
   Retained as the qcheck oracle for the direct parser below, and as the
   cold path for non-object lines (identical error messages for free). *)
let request_of_line_ast line =
  match parse line with
  | exception Error m -> Result.error ("bad request line: " ^ m)
  | Obj fields -> (
    let id =
      match field fields "id" with Some (Int i) -> Some i | _ -> None
    in
    match request_of_fields fields with
    | Ok req -> Ok (id, req)
    | Error m -> Result.error ("bad request: " ^ m))
  | _ -> Result.error "bad request line: expected a JSON object"

(* ------------------------------------------------------------------ *)
(* Direct request parsing: cursor -> typed IR, no AST                  *)
(* ------------------------------------------------------------------ *)

(* The hot decode path parses known request shapes straight from the
   cursor into [Request.t], touching one reused slot record instead of
   materializing a [json] tree. Steady-state allocation is limited to the
   strings the request must own (field payloads) and the final record.

   Behavioural parity with the AST path is a hard requirement — same
   accepted lines, same [Error] messages (the qcheck round-trip and the
   malformed-line corpus compare both). Wrong-typed values in fields a
   kind does not consume are therefore tolerated exactly like the AST
   path tolerates them: the value is parsed generically and the type
   error is only raised if the kind actually reads that field. *)

(* known field indices; bit i of the masks below tracks field i *)
let f_id = 0

let f_kind = 1

let f_concept = 2

let f_types = 3

let f_nominal = 4

let f_defs = 5

let f_source = 6

let f_expr = 7

let f_certified_only = 8

let f_theory = 9

let f_instance = 10

let f_structure = 11

let f_n = 12

let f_seed = 13

let known_fields =
  [| "id"; "kind"; "concept"; "types"; "nominal"; "defs"; "source"; "expr";
     "certified_only"; "theory"; "instance"; "structure"; "n"; "seed" |]

type slots = {
  mutable s_keys : int; (* fields whose key appeared (duplicate detection) *)
  mutable s_seen : int; (* fields whose value parsed at the expected type *)
  mutable s_bad : int; (* fields whose value had the wrong type *)
  mutable s_unknown : string list; (* unknown keys seen (duplicate detection) *)
  mutable s_id : int;
  mutable s_has_id : bool;
  mutable s_kind : string;
  mutable s_concept : string;
  mutable s_types : string list;
  mutable s_nominal : bool;
  mutable s_defs : string option;
  mutable s_source : string;
  mutable s_expr : string;
  mutable s_certified_only : bool;
  mutable s_theory : string;
  mutable s_instance : string option;
  mutable s_structure : string;
  mutable s_n : int;
  mutable s_seed : int;
}

let slots =
  { s_keys = 0; s_seen = 0; s_bad = 0; s_unknown = []; s_id = 0;
    s_has_id = false; s_kind = ""; s_concept = ""; s_types = [];
    s_nominal = false; s_defs = None; s_source = ""; s_expr = "";
    s_certified_only = false; s_theory = ""; s_instance = None;
    s_structure = ""; s_n = 0; s_seed = 0 }

let reset_slots () =
  slots.s_keys <- 0;
  slots.s_seen <- 0;
  slots.s_bad <- 0;
  slots.s_unknown <- [];
  slots.s_has_id <- false;
  slots.s_kind <- "";
  slots.s_concept <- "";
  slots.s_types <- [];
  slots.s_nominal <- false;
  slots.s_defs <- None;
  slots.s_source <- "";
  slots.s_expr <- "";
  slots.s_certified_only <- false;
  slots.s_theory <- "";
  slots.s_instance <- None;
  slots.s_structure <- ""

let seen i = slots.s_seen land (1 lsl i) <> 0

let mark_seen i = slots.s_seen <- slots.s_seen lor (1 lsl i)

let bad i = slots.s_bad land (1 lsl i) <> 0

let mark_bad i = slots.s_bad <- slots.s_bad lor (1 lsl i)

(* reused cursor for the direct path: zero per-line setup allocation *)
let dcur = { src = ""; pos = 0 }

(* Match the key in place against the known field names ([region_equals]
   from the literal matcher above); top-level recursion, so the scan is
   allocation-free. *)
let rec find_field_from src pos len i =
  if i = Array.length known_fields then -1
  else if region_equals src pos len known_fields.(i) then i
  else find_field_from src pos len (i + 1)

let find_field src pos len = find_field_from src pos len 0

(* Parse an int value if the token is a plain integer; anything else —
   including floats and overflowing digit runs — falls back to
   [parse_number] so malformed numbers keep their AST error messages.
   Returns [None] when the value was valid JSON but not an [Int]. *)
let parse_int_value c =
  let src = c.src in
  let len = String.length src in
  let start = c.pos in
  let neg = start < len && String.unsafe_get src start = '-' in
  let d0 = if neg then start + 1 else start in
  let i = ref d0 in
  while
    !i < len
    &&
    let ch = String.unsafe_get src !i in
    ch >= '0' && ch <= '9'
  do
    incr i
  done;
  let ndig = !i - d0 in
  let clean =
    ndig >= 1 && ndig <= 18
    && (!i >= len
       ||
       match String.unsafe_get src !i with
       | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> false
       | _ -> true)
  in
  if clean then begin
    let v = ref 0 in
    for j = d0 to !i - 1 do
      v := (!v * 10) + (Char.code (String.unsafe_get src j) - 48)
    done;
    c.pos <- !i;
    Some (if neg then - !v else !v)
  end
  else
    match parse_number c with Int v -> Some v | _ -> None

(* Generic skip for values we do not decode (unknown keys, wrong-typed
   values): reuse the AST parser so malformed content fails with exactly
   the AST messages. Allocates, but only off the happy path. *)
let skip_value c = ignore (parse_value c)

let parse_direct_string c idx set =
  skip_ws c;
  if has c && cur c = '"' then begin
    advance c;
    set (parse_string_body c);
    mark_seen idx
  end
  else begin
    mark_bad idx;
    skip_value c
  end

let parse_direct_opt_string c idx set =
  skip_ws c;
  if has c && cur c = '"' then begin
    advance c;
    set (Some (parse_string_body c));
    mark_seen idx
  end
  else if has c && cur c = 'n' then begin
    ignore (parse_literal c "null" Null);
    set None;
    mark_seen idx
  end
  else begin
    mark_bad idx;
    skip_value c
  end

let parse_direct_bool c idx set =
  skip_ws c;
  if has c && cur c = 't' then begin
    ignore (parse_literal c "true" (Bool true));
    set true;
    mark_seen idx
  end
  else if has c && cur c = 'f' then begin
    ignore (parse_literal c "false" (Bool false));
    set false;
    mark_seen idx
  end
  else begin
    mark_bad idx;
    skip_value c
  end

let is_int_start ch = ch = '-' || (ch >= '0' && ch <= '9')

let parse_direct_int c idx set =
  skip_ws c;
  if has c && is_int_start (cur c) then begin
    match parse_int_value c with
    | Some v ->
      set v;
      mark_seen idx
    | None -> mark_bad idx
  end
  else begin
    mark_bad idx;
    skip_value c
  end

(* "id" mirrors the AST path: a non-integer id is silently ignored. *)
let parse_direct_id c =
  skip_ws c;
  if has c && is_int_start (cur c) then begin
    match parse_int_value c with
    | Some v ->
      slots.s_id <- v;
      slots.s_has_id <- true
    | None -> ()
  end
  else skip_value c

let rec str_list_elems c ok acc =
  skip_ws c;
  if has c && cur c = ']' then advance c
  else begin
    (skip_ws c;
     if !ok && has c && cur c = '"' then begin
       advance c;
       acc := parse_string_body c :: !acc
     end
     else begin
       ok := false;
       skip_value c
     end);
    skip_ws c;
    if has c && cur c = ',' then begin
      advance c;
      str_list_elems c ok acc
    end
    else if has c && cur c = ']' then advance c
    else fail "at %d: expected , or ] in array" c.pos
  end

let parse_direct_str_list c idx set =
  skip_ws c;
  if has c && cur c = '[' then begin
    advance c;
    let ok = ref true in
    let acc = ref [] in
    str_list_elems c ok acc;
    if !ok then begin
      set (List.rev !acc);
      mark_seen idx
    end
    else mark_bad idx
  end
  else begin
    mark_bad idx;
    skip_value c
  end

let parse_direct_value c idx =
  if idx = f_id then parse_direct_id c
  else if idx = f_kind then parse_direct_string c idx (fun s -> slots.s_kind <- s)
  else if idx = f_concept then
    parse_direct_string c idx (fun s -> slots.s_concept <- s)
  else if idx = f_types then
    parse_direct_str_list c idx (fun l -> slots.s_types <- l)
  else if idx = f_nominal then
    parse_direct_bool c idx (fun b -> slots.s_nominal <- b)
  else if idx = f_defs then
    parse_direct_opt_string c idx (fun s -> slots.s_defs <- s)
  else if idx = f_source then
    parse_direct_string c idx (fun s -> slots.s_source <- s)
  else if idx = f_expr then parse_direct_string c idx (fun s -> slots.s_expr <- s)
  else if idx = f_certified_only then
    parse_direct_bool c idx (fun b -> slots.s_certified_only <- b)
  else if idx = f_theory then
    parse_direct_string c idx (fun s -> slots.s_theory <- s)
  else if idx = f_instance then
    parse_direct_opt_string c idx (fun s -> slots.s_instance <- s)
  else if idx = f_structure then
    parse_direct_string c idx (fun s -> slots.s_structure <- s)
  else if idx = f_n then parse_direct_int c idx (fun i -> slots.s_n <- i)
  else parse_direct_int c idx (fun i -> slots.s_seed <- i)

(* One key/value pair. The key is matched against the known field names in
   place; only unknown keys and escaped keys are materialized. *)
let parse_direct_member c =
  skip_ws c;
  let kpos = c.pos in
  expect c '"';
  let src = c.src in
  let len = String.length src in
  let i = ref c.pos in
  while
    !i < len
    &&
    let ch = String.unsafe_get src !i in
    ch <> '"' && ch <> '\\'
  do
    incr i
  done;
  let idx =
    if !i < len && String.unsafe_get src !i = '"' then begin
      let idx = find_field src c.pos (!i - c.pos) in
      if idx >= 0 then begin
        c.pos <- !i + 1;
        idx
      end
      else begin
        (* unknown key: materialize for duplicate detection *)
        let key = String.sub src c.pos (!i - c.pos) in
        c.pos <- !i + 1;
        if List.mem key slots.s_unknown then
          fail "at %d: duplicate key %S in object" kpos key;
        slots.s_unknown <- key :: slots.s_unknown;
        -1
      end
    end
    else begin
      (* escaped key: cold path via the scratch buffer *)
      let key = parse_string_body c in
      let rec find j =
        if j = Array.length known_fields then -1
        else if String.equal known_fields.(j) key then j
        else find (j + 1)
      in
      let idx = find 0 in
      if idx < 0 then begin
        if List.mem key slots.s_unknown then
          fail "at %d: duplicate key %S in object" kpos key;
        slots.s_unknown <- key :: slots.s_unknown;
        -1
      end
      else idx
    end
  in
  if idx >= 0 then begin
    if slots.s_keys land (1 lsl idx) <> 0 then
      fail "at %d: duplicate key %S in object" kpos known_fields.(idx);
    slots.s_keys <- slots.s_keys lor (1 lsl idx)
  end;
  skip_ws c;
  expect c ':';
  if idx >= 0 then parse_direct_value c idx else skip_value c

let rec parse_direct_members c =
  parse_direct_member c;
  skip_ws c;
  if has c && cur c = ',' then begin
    advance c;
    parse_direct_members c
  end
  else if has c && cur c = '}' then advance c
  else fail "at %d: expected , or } in object" c.pos

let parse_direct_object c =
  (* cursor sits just past '{' *)
  skip_ws c;
  if has c && cur c = '}' then advance c else parse_direct_members c

(* Slot -> field validation, mirroring the AST field helpers' messages
   and evaluation order exactly. *)
let slot_str idx name k =
  if seen idx then k ()
  else if bad idx then
    Result.error (Printf.sprintf "field %S must be a string" name)
  else Result.error (Printf.sprintf "missing field %S" name)

let slot_opt_str idx name k =
  if seen idx || not (bad idx) then k ()
  else Result.error (Printf.sprintf "field %S must be a string" name)

let slot_bool idx name k =
  if seen idx || not (bad idx) then k ()
  else Result.error (Printf.sprintf "field %S must be a boolean" name)

let slot_int ~required idx name k =
  if seen idx then k ()
  else if bad idx then
    Result.error (Printf.sprintf "field %S must be an integer" name)
  else if required then Result.error (Printf.sprintf "missing field %S" name)
  else k ()

let slot_str_list idx name k =
  if seen idx then k ()
  else if bad idx then
    Result.error (Printf.sprintf "field %S must be an array of strings" name)
  else Result.error (Printf.sprintf "missing field %S" name)

let build_direct_request () =
  slot_str f_kind "kind" @@ fun () ->
  match Request.kind_of_name slots.s_kind with
  | None -> Result.error (Printf.sprintf "unknown request kind %S" slots.s_kind)
  | Some Request.Kcheck ->
    slot_str f_concept "concept" @@ fun () ->
    slot_str_list f_types "types" @@ fun () ->
    slot_bool f_nominal "nominal" @@ fun () ->
    slot_opt_str f_defs "defs" @@ fun () ->
    Ok
      (Request.Check
         { concept = slots.s_concept; types = slots.s_types;
           nominal = slots.s_nominal; defs = slots.s_defs })
  | Some Request.Kparse ->
    slot_str f_source "source" @@ fun () ->
    Ok (Request.Parse { source = slots.s_source })
  | Some Request.Klint ->
    slot_str f_source "source" @@ fun () ->
    Ok (Request.Lint { source = slots.s_source })
  | Some Request.Koptimize ->
    slot_str f_expr "expr" @@ fun () ->
    slot_bool f_certified_only "certified_only" @@ fun () ->
    Ok
      (Request.Optimize
         { expr = slots.s_expr; certified_only = slots.s_certified_only })
  | Some Request.Kprove ->
    slot_str f_theory "theory" @@ fun () ->
    slot_opt_str f_instance "instance" @@ fun () ->
    Ok (Request.Prove { theory = slots.s_theory; instance = slots.s_instance })
  | Some Request.Kclosure ->
    slot_str f_concept "concept" @@ fun () ->
    slot_str_list f_types "types" @@ fun () ->
    Ok (Request.Closure { concept = slots.s_concept; types = slots.s_types })
  | Some ((Request.Kmatvec | Request.Kmatmul | Request.Ksolve) as k) ->
    slot_str f_structure "structure" @@ fun () ->
    slot_int ~required:true f_n "n" @@ fun () ->
    slot_int ~required:false f_seed "seed" @@ fun () ->
    let structure = slots.s_structure in
    let n = slots.s_n in
    let seed = if seen f_seed then slots.s_seed else 0 in
    Ok
      (match k with
      | Request.Kmatvec -> Request.Matvec { structure; n; seed }
      | Request.Kmatmul -> Request.Matmul { structure; n; seed }
      | _ -> Request.Solve { structure; n; seed })

let request_of_line line =
  reset_slots ();
  let c = dcur in
  c.src <- line;
  c.pos <- 0;
  skip_ws c;
  let result =
    if has c && cur c = '{' then begin
      advance c;
      match
        parse_direct_object c;
        skip_ws c;
        if has c then fail "at %d: trailing %c after value" c.pos (cur c)
      with
      | () -> (
        match build_direct_request () with
        | Ok req ->
          Ok ((if slots.s_has_id then Some slots.s_id else None), req)
        | Error m -> Result.error ("bad request: " ^ m))
      | exception Error m -> Result.error ("bad request line: " ^ m)
    end
    else
      (* non-object line: the cold AST path owns the error wording *)
      request_of_line_ast line
  in
  c.src <- "";
  reset_slots ();
  result

let request_to_line ?id req =
  let base =
    match id with None -> [] | Some i -> [ ("id", Int i) ]
  in
  let fields =
    match req with
    | Request.Check { concept; types; nominal; defs } ->
      [ ("kind", Str "check"); ("concept", Str concept);
        ("types", Arr (List.map (fun s -> Str s) types));
        ("nominal", Bool nominal) ]
      @ (match defs with None -> [] | Some d -> [ ("defs", Str d) ])
    | Request.Parse { source } ->
      [ ("kind", Str "parse"); ("source", Str source) ]
    | Request.Lint { source } ->
      [ ("kind", Str "lint"); ("source", Str source) ]
    | Request.Optimize { expr; certified_only } ->
      [ ("kind", Str "optimize"); ("expr", Str expr);
        ("certified_only", Bool certified_only) ]
    | Request.Prove { theory; instance } ->
      [ ("kind", Str "prove"); ("theory", Str theory) ]
      @ (match instance with None -> [] | Some i -> [ ("instance", Str i) ])
    | Request.Closure { concept; types } ->
      [ ("kind", Str "closure"); ("concept", Str concept);
        ("types", Arr (List.map (fun s -> Str s) types)) ]
    | Request.Matvec { structure; n; seed } ->
      [ ("kind", Str "matvec"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
    | Request.Matmul { structure; n; seed } ->
      [ ("kind", Str "matmul"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
    | Request.Solve { structure; n; seed } ->
      [ ("kind", Str "solve"); ("structure", Str structure); ("n", Int n);
        ("seed", Int seed) ]
  in
  to_string (Obj (base @ fields))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let payload_fields = function
  | Request.Checked { ok; failures; warnings; report } ->
    [ ("ok", Bool ok); ("failures", Int failures); ("warnings", Int warnings);
      ("report", Str report) ]
  | Request.Parsed { items; concepts; models } ->
    [ ("items", Int items); ("concepts", Int concepts); ("models", Int models) ]
  | Request.Linted { errors; warnings; suggestions; messages } ->
    [ ("errors", Int errors); ("warnings", Int warnings);
      ("suggestions", Int suggestions);
      ("messages", Arr (List.map (fun m -> Str m) messages)) ]
  (* "rewrite_steps", not "steps": the envelope already has a "steps"
     field for the budget charge *)
  | Request.Optimized { output; steps; ops_before; ops_after } ->
    [ ("output", Str output); ("rewrite_steps", Int steps);
      ("ops_before", Int ops_before); ("ops_after", Int ops_after) ]
  | Request.Proved { checked; failed } ->
    [ ("checked", Int checked); ("failed", Int failed) ]
  | Request.Closed { size; obligations } ->
    [ ("size", Int size);
      ("obligations", Arr (List.map (fun o -> Str o) obligations)) ]
  (* "kernel_steps" for the same reason as "rewrite_steps" above *)
  | Request.Computed { kernel; detected; n; steps; checksum } ->
    [ ("kernel", Str kernel); ("detected", Str detected); ("n", Int n);
      ("kernel_steps", Int steps); ("checksum", Str checksum) ]

(* The AST response renderer: build the [json] tree, print it. Retained
   as the qcheck oracle for [response_into] below. *)
let response_to_line_ast (r : Request.response) =
  let status_fields =
    match r.Request.rsp_result with
    | Ok payload -> ("status", Str "ok") :: payload_fields payload
    | Error e ->
      [ ("status", Str "error");
        ("error", Str (Request.error_code_name e.Request.code));
        ("detail", Str e.Request.detail) ]
  in
  to_string
    (Obj
       ([ ("id", Int r.Request.rsp_id);
          ( "kind",
            match r.Request.rsp_kind with
            | Some k -> Str (Request.kind_name k)
            | None -> Null ) ]
       @ status_fields
       @ [ ("cached", Bool r.Request.rsp_cached);
           ("steps", Int r.Request.rsp_steps) ]))

(* ------------------------------------------------------------------ *)
(* Direct response rendering: typed IR -> caller's buffer, no AST      *)
(* ------------------------------------------------------------------ *)

(* Byte-identical to [response_to_line_ast], but written straight into a
   (typically per-server, reused) buffer: no field lists, no [json]
   nodes, no intermediate strings. The buffer is owned by the caller;
   this function only appends. *)

let add_str_field buf name s =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":\"";
  escape_into buf s;
  Buffer.add_char buf '"'

let add_int_field buf name i =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  add_int buf i

let add_bool_field buf name b =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (if b then "true" else "false")

(* top-level loop, not List.iteri: no per-call closure *)
let rec add_str_elems buf first = function
  | [] -> ()
  | s :: rest ->
    if not first then Buffer.add_char buf ',';
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"';
    add_str_elems buf false rest

let add_str_list_field buf name ss =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":[";
  add_str_elems buf true ss;
  Buffer.add_char buf ']'

let payload_into buf = function
  | Request.Checked { ok; failures; warnings; report } ->
    add_bool_field buf "ok" ok;
    add_int_field buf "failures" failures;
    add_int_field buf "warnings" warnings;
    add_str_field buf "report" report
  | Request.Parsed { items; concepts; models } ->
    add_int_field buf "items" items;
    add_int_field buf "concepts" concepts;
    add_int_field buf "models" models
  | Request.Linted { errors; warnings; suggestions; messages } ->
    add_int_field buf "errors" errors;
    add_int_field buf "warnings" warnings;
    add_int_field buf "suggestions" suggestions;
    add_str_list_field buf "messages" messages
  | Request.Optimized { output; steps; ops_before; ops_after } ->
    add_str_field buf "output" output;
    add_int_field buf "rewrite_steps" steps;
    add_int_field buf "ops_before" ops_before;
    add_int_field buf "ops_after" ops_after
  | Request.Proved { checked; failed } ->
    add_int_field buf "checked" checked;
    add_int_field buf "failed" failed
  | Request.Closed { size; obligations } ->
    add_int_field buf "size" size;
    add_str_list_field buf "obligations" obligations
  | Request.Computed { kernel; detected; n; steps; checksum } ->
    add_str_field buf "kernel" kernel;
    add_str_field buf "detected" detected;
    add_int_field buf "n" n;
    add_int_field buf "kernel_steps" steps;
    add_str_field buf "checksum" checksum

let response_into buf (r : Request.response) =
  Buffer.add_string buf "{\"id\":";
  add_int buf r.Request.rsp_id;
  Buffer.add_string buf ",\"kind\":";
  (match r.Request.rsp_kind with
  | Some k ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (Request.kind_name k);
    Buffer.add_char buf '"'
  | None -> Buffer.add_string buf "null");
  (match r.Request.rsp_result with
  | Ok payload ->
    Buffer.add_string buf ",\"status\":\"ok\"";
    payload_into buf payload
  | Error e ->
    Buffer.add_string buf ",\"status\":\"error\",\"error\":\"";
    Buffer.add_string buf (Request.error_code_name e.Request.code);
    Buffer.add_char buf '"';
    add_str_field buf "detail" e.Request.detail);
  add_bool_field buf "cached" r.Request.rsp_cached;
  add_int_field buf "steps" r.Request.rsp_steps;
  Buffer.add_char buf '}'

let response_to_line r =
  let buf = Buffer.create 256 in
  response_into buf r;
  Buffer.contents buf
