(* A content-keyed LRU memo cache with hit/miss accounting.

   Hashtbl for lookup, intrusive doubly-linked list for recency order.
   Capacity is a hard bound on entry count; insertion past it evicts the
   least-recently-used entry. Keys are canonical content strings (see
   Request.key / Propagate.request_key), so cache identity is data
   identity — there is nothing to invalidate, only to evict. *)

type 'v node = {
  nd_key : string;
  nd_value : 'v;
  mutable prev : 'v node option; (* towards most-recent *)
  mutable next : 'v node option; (* towards least-recent *)
}

type 'v t = {
  name : string;
  capacity : int;
  tbl : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  st_name : string;
  st_capacity : int;
  st_size : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

let create ~capacity name =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { name; capacity; tbl = Hashtbl.create (min capacity 64); mru = None;
    lru = None; hits = 0; misses = 0; evictions = 0 }

let name t = t.name
let size t = Hashtbl.length t.tbl

let unlink t nd =
  (match nd.prev with
  | Some p -> p.next <- nd.next
  | None -> t.mru <- nd.next);
  (match nd.next with
  | Some n -> n.prev <- nd.prev
  | None -> t.lru <- nd.prev);
  nd.prev <- None;
  nd.next <- None

let push_front t nd =
  nd.next <- t.mru;
  nd.prev <- None;
  (match t.mru with Some m -> m.prev <- Some nd | None -> t.lru <- Some nd);
  t.mru <- Some nd

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some nd ->
    t.hits <- t.hits + 1;
    unlink t nd;
    push_front t nd;
    Some nd.nd_value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t key = Hashtbl.mem t.tbl key

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some old ->
    unlink t old;
    Hashtbl.remove t.tbl key
  | None -> ());
  if Hashtbl.length t.tbl >= t.capacity then (
    match t.lru with
    | Some victim ->
      unlink t victim;
      Hashtbl.remove t.tbl victim.nd_key;
      t.evictions <- t.evictions + 1
    | None -> ());
  let nd = { nd_key = key; nd_value = value; prev = None; next = None } in
  Hashtbl.replace t.tbl key nd;
  push_front t nd

(* The memoisation workhorse: [enabled:false] bypasses the cache entirely
   (no stats traffic), so a cache-off server reports all-zero tables
   rather than misleading misses. *)
let find_or_compute t ~enabled key f =
  if not enabled then (f (), false)
  else
    match find t key with
    | Some v -> (v, true)
    | None ->
      let v = f () in
      add t key v;
      (v, false)

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let stats t =
  { st_name = t.name; st_capacity = t.capacity; st_size = size t;
    st_hits = t.hits; st_misses = t.misses; st_evictions = t.evictions }

(* allocation-free counter reads, for per-request snapshot deltas *)
let hits t = t.hits
let misses t = t.misses

let hit_ratio st =
  let total = st.st_hits + st.st_misses in
  if total = 0 then 0.0 else float_of_int st.st_hits /. float_of_int total

(* Keys from most- to least-recently used; the recency order is part of
   the module's contract and is property-tested. *)
let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some nd -> go (nd.nd_key :: acc) nd.next
  in
  go [] t.mru

let pp_stats ppf st =
  Fmt.pf ppf "%-10s cap=%-5d size=%-5d hits=%-7d misses=%-7d evict=%-6d %5.1f%%"
    st.st_name st.st_capacity st.st_size st.st_hits st.st_misses
    st.st_evictions
    (100.0 *. hit_ratio st)
