(** The wire format: one JSON object per line ("JSONL-ish"), over a
    hand-rolled JSON subset — objects, arrays, strings with escapes,
    integers, floats, booleans, null. No external JSON dependency.

    Example request lines:
    {v
    {"id":1,"kind":"check","concept":"Container","types":["varray<int>"]}
    {"kind":"optimize","expr":"x*1+0","certified_only":true}
    {"kind":"prove","theory":"group","instance":"int[+]"}
    v} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Error of string

val parse : string -> json
(** Raises {!Error} on malformed input. *)

val to_string : json -> string
(** Canonical single-line rendering; [parse (to_string v)] round-trips. *)

val request_of_line : string -> (int option * Request.t, string) result
(** Decode one request line: optional client-chosen [id] plus the typed
    request. [Error] carries a human-readable reason — the server turns
    it into a structured [Bad_request] response, never an exception.

    This is the hot decode path: known request shapes are parsed directly
    from the cursor into the typed IR without materializing a {!json}
    tree, so steady-state allocation is limited to the strings the
    request must own. Accepted lines and error messages are identical to
    {!request_of_line_ast}. *)

val request_of_line_ast : string -> (int option * Request.t, string) result
(** The retained oracle: parse the full {!json} AST, then validate
    fields. Same observable behaviour as {!request_of_line}; the qcheck
    round-trip suite compares the two on every generated request. *)

val request_to_line : ?id:int -> Request.t -> string
(** Encode a request; [request_of_line (request_to_line r)] round-trips. *)

val response_into : Buffer.t -> Request.response -> unit
(** Append one response line (without the trailing newline) to [buf].
    The buffer is owned by the caller — the server keeps one per
    connection loop and reuses it — and the bytes are identical to
    {!response_to_line_ast}. *)

val response_to_line : Request.response -> string
(** [response_into] into a fresh buffer; convenience for cold paths. *)

val response_to_line_ast : Request.response -> string
(** The retained oracle renderer: build the {!json} tree, print it. *)
