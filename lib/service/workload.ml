(* The synthetic workload generator: a seeded request stream with a
   configurable kind mix and Zipf-like key reuse.

   Each kind owns a pool of distinct request payloads ("keys"). A Zipf(s)
   rank distribution over the pool skews traffic towards a few hot keys —
   the regime where content-keyed caches earn their keep — while the tail
   keeps cold keys arriving. Everything derives from one Random.State
   seeded by [seed], so a fixed seed replays the identical stream
   (fingerprints are digests of the canonical wire rendering, making
   "identical" checkable across processes). *)

type mix = (Request.kind * int) list

let default_mix =
  [ (Request.Kclosure, 25); (Request.Klint, 20); (Request.Kcheck, 15);
    (Request.Koptimize, 15); (Request.Kprove, 15); (Request.Kparse, 10) ]

(* Rejects carry the offending token and its byte offset in [spec],
   matching the wire parsers' "at <byte>: ..." convention — a mix
   usually arrives on a command line, where "bad weight" without a
   position means hunting through every component by hand. *)
let mix_leading_ws part =
  let i = ref 0 in
  let n = String.length part in
  while
    !i < n
    && (match part.[!i] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
  do
    incr i
  done;
  !i

let parse_mix spec =
  let rec go acc base = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
      let next = base + String.length part + 1 in
      let at = base + mix_leading_ws part in
      let tok = String.trim part in
      match String.split_on_char '=' tok with
      | [ name; weight ] -> (
        match (Request.kind_of_name name, int_of_string_opt weight) with
        | Some kind, Some w when w >= 0 -> go ((kind, w) :: acc) next rest
        | None, _ ->
          Error (Printf.sprintf "at %d: unknown kind %S in mix" at name)
        | _, _ ->
          Error
            (Printf.sprintf
               "at %d: bad weight %S in %S (want a non-negative int)"
               (at + String.length name + 1)
               weight tok))
      | _ ->
        Error
          (Printf.sprintf "at %d: bad mix component %S (want kind=weight)" at
             tok))
  in
  match go [] 0 (String.split_on_char ',' spec) with
  | Ok [] -> Error "empty mix"
  | Ok m when List.for_all (fun (_, w) -> w = 0) m -> Error "all-zero mix"
  | r -> r

(* ------------------------------------------------------------------ *)
(* Key pools                                                           *)
(* ------------------------------------------------------------------ *)

(* A tiny .gpc world, distinct per key. *)
let gpc_source k =
  Printf.sprintf
    "// workload defs %d\n\
     concept W%d<T> {\n\
    \  f%d : T -> T;\n\
    \  axiom involution(a): \"f%d(f%d(a)) = a\";\n\
    \  complexity f%d O(1);\n\
     }\n\
     type w%d { }\n\
     op f%d : w%d -> w%d;\n"
    k k k k k k k k k k

(* Lint programs: rendered from generated ASTs, with a key comment so
   each key hashes distinctly even when shapes coincide. *)
let lint_source k =
  let blocks = 1 + (k mod 4) in
  let buggy_every = if k mod 3 = 0 then 2 else 0 in
  Printf.sprintf "// workload lint key %d\n%s" k
    (Gp_stllint.Render.to_source
       (Gp_stllint.Corpus.generate ~blocks ~buggy_every))

(* Expressions with redexes at varying depth; variable names carry the
   key so distinct keys stay distinct after parsing. *)
let optimize_expr k =
  (* the wrapping identity must match the base expression's carrier, or
     Sparser (correctly) rejects the mixed-type operation *)
  let base, one =
    match k mod 4 with
    | 0 -> (Printf.sprintf "x%d * 1 + 0" k, "1")
    | 1 -> (Printf.sprintf "(f%d:float) * 1.0" k, "1.0")
    | 2 -> (Printf.sprintf "x%d - x%d" k k, "1")
    | _ -> (Printf.sprintf "x%d * 0 * 1" k, "1")
  in
  let rec wrap depth e =
    if depth = 0 then e else wrap (depth - 1) (Printf.sprintf "(%s) * %s" e one)
  in
  wrap (k mod 3) base

let check_pool =
  [ ("IncidenceGraph", [ "adjacency_list" ], false);
    ("IncidenceGraph", [ "adjacency_matrix" ], false);
    ("GraphEdge", [ "adjacency_list::edge" ], false);
    ("VertexListGraph", [ "adjacency_list" ], false);
    ("AdjacencyMatrixGraph", [ "adjacency_list" ], false) (* fails *);
    ("RandomAccessIterator", [ "vector<int>::iterator" ], true);
    ("ForwardIterator", [ "list<int>::iterator" ], true);
    ("RandomAccessContainer", [ "deque<int>" ], true);
    ("Container", [ "vector<int>" ], false);
    ("VectorSpace", [ "cvec"; "complex" ], false) ]

let closure_pool =
  [ ("IncidenceGraph", [ "adjacency_list" ]);
    ("IncidenceGraph", [ "adjacency_matrix" ]);
    ("VertexListGraph", [ "adjacency_list" ]);
    ("AdjacencyMatrixGraph", [ "adjacency_matrix" ]);
    ("GraphEdge", [ "adjacency_list::edge" ]);
    ("RandomAccessIterator", [ "vector<int>::iterator" ]);
    ("BidirectionalIterator", [ "list<int>::iterator" ]);
    ("Container", [ "vector<int>" ]);
    ("Sequence", [ "list<int>" ]);
    ("VectorSpace", [ "cvec"; "complex" ]) ]

let prove_pool =
  [ ("swo", Some "int_lt"); ("swo", Some "string_lt"); ("swo", None);
    ("orders", Some "int_le"); ("orders", Some "string_le");
    ("orders", Some "rational_le");
    ("monoid", Some "int[*]"); ("monoid", Some "float[*]");
    ("monoid", Some "bool[&&]"); ("monoid", Some "string[^]");
    ("monoid", Some "matrix[.]"); ("monoid", None);
    ("group", Some "int[+]"); ("group", Some "float[*]");
    ("group", Some "rational[*]"); ("group", Some "matrix[.]");
    ("ring", Some "int"); ("ring", None) ]

let nth_mod pool k = List.nth pool (k mod List.length pool)

(* Numeric pools. Orders are sized so even the dense fallbacks stay
   under the default 100k-step budget (dense matmul at n=40 is 64k
   steps, dense solve at n=64 is ~91k) while the tightened
   flight-recorder budgets still trip Over_budget deterministically. *)
let structure_pool = Gp_structla.Mat.structure_names
let matvec_ns = [ 24; 32; 48; 64; 96 ]
let matmul_ns = [ 16; 24; 32; 40 ]
let solve_ns = [ 24; 32; 48; 64 ]

(* ------------------------------------------------------------------ *)
(* Error injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Requests that deterministically fail, one flavour per error surface
   the service distinguishes: bad .gpc, bad lint syntax, bad expression,
   unknown concept, unknown theory, and a budget-buster. The key [k]
   rides along in names so distinct ranks stay distinct requests.

   The budget-buster is a long identity chain whose rewrite fires one
   step per link: ~3000 steps, legal under the 100k default budget but
   Over_budget under the tightened budgets the flight-recorder tests and
   bench s4 serve with (max_steps <= ~2500). The optimizer charges the
   step count on hit and miss alike, so the outcome is cache-independent
   — exactly what deterministic replay needs. *)
let over_budget_expr k =
  let b = Buffer.create 16_384 in
  Buffer.add_string b (Printf.sprintf "x%d" k);
  for _ = 1 to 3000 do
    Buffer.add_string b "*1"
  done;
  Buffer.contents b

let error_request k =
  match k mod 6 with
  | 0 -> Request.Parse { source = Printf.sprintf "concept Broken%d<T {" k }
  | 1 -> Request.Lint { source = Printf.sprintf "oops %d (" k }
  | 2 ->
    Request.Optimize
      { expr = Printf.sprintf "x%d * * 1" k; certified_only = false }
  | 3 ->
    Request.Closure
      { concept = Printf.sprintf "NoSuchConcept%d" k; types = [ "int" ] }
  | 4 -> Request.Prove { theory = Printf.sprintf "numerology%d" k; instance = None }
  | _ ->
    Request.Optimize { expr = over_budget_expr k; certified_only = false }

let request_for kind k =
  match kind with
  | Request.Kcheck ->
    (* every fourth check key carries sandbox defs, exercising the
       defs cache from the check path too *)
    if k mod 4 = 3 then
      Request.Check
        { concept = Printf.sprintf "W%d" k;
          types = [ Printf.sprintf "w%d" k ];
          nominal = false;
          defs = Some (gpc_source k) }
    else
      let concept, types, nominal = nth_mod check_pool k in
      Request.Check { concept; types; nominal; defs = None }
  | Request.Kparse -> Request.Parse { source = gpc_source k }
  | Request.Klint -> Request.Lint { source = lint_source k }
  | Request.Koptimize ->
    Request.Optimize { expr = optimize_expr k; certified_only = k mod 2 = 0 }
  | Request.Kprove ->
    let theory, instance = nth_mod prove_pool k in
    Request.Prove { theory; instance }
  | Request.Kclosure ->
    let concept, types = nth_mod closure_pool k in
    Request.Closure { concept; types }
  | Request.Kmatvec ->
    Request.Matvec
      { structure = nth_mod structure_pool k;
        n = nth_mod matvec_ns k;
        seed = k mod 5 }
  | Request.Kmatmul ->
    Request.Matmul
      { structure = nth_mod structure_pool (k + 1);
        n = nth_mod matmul_ns k;
        seed = k mod 5 }
  | Request.Ksolve ->
    Request.Solve
      { structure = nth_mod structure_pool (k + 2);
        n = nth_mod solve_ns k;
        seed = k mod 5 }

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

(* Precomputed CDF of the Zipf(s) rank distribution over [keyspace]
   ranks; sampling is a binary-search-free linear scan (keyspace is
   small). *)
let zipf_cdf ~s ~keyspace =
  let w = Array.init keyspace (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample_rank st cdf =
  let u = Random.State.float st 1.0 in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || u <= cdf.(i) then i else go (i + 1) in
  go 0

let pick_kind st mix =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
  let x = Random.State.int st total in
  let rec go acc = function
    | [] -> assert false
    | (kind, w) :: rest -> if x < acc + w then kind else go (acc + w) rest
  in
  go 0 mix

let generate ?(mix = default_mix) ?(zipf = 1.1) ?(keyspace = 40)
    ?(errors = 0.0) ~seed ~n () =
  if n < 0 then invalid_arg "Workload.generate: n < 0";
  if keyspace < 1 then invalid_arg "Workload.generate: keyspace < 1";
  if errors < 0.0 || errors > 1.0 then
    invalid_arg "Workload.generate: errors outside [0,1]";
  let st = Random.State.make [| 0x5e1; seed |] in
  let cdf = zipf_cdf ~s:zipf ~keyspace in
  List.init n (fun _ ->
      let kind = pick_kind st mix in
      (* rank 0 is the hottest key; permute per kind so distinct kinds
         don't all hammer key 0 of their pools in lockstep *)
      let rank = sample_rank st cdf in
      (* the short-circuit keeps the RNG stream byte-identical to the
         errors-free stream when errors = 0.0 *)
      if errors > 0.0 && Random.State.float st 1.0 < errors then
        error_request rank
      else request_for kind rank)

let fingerprint reqs =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map Request.key reqs)))

let pp_mix ppf mix =
  Fmt.(list ~sep:comma (fun ppf (k, w) ->
           Fmt.pf ppf "%s=%d" (Request.kind_name k) w))
    ppf mix
