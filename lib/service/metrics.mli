(** Serving observability: a thin veneer over the shared telemetry
    registry ({!Gp_telemetry.Metrics}). Per-kind request counters and
    log-scale latency histograms with {e interpolated} p50/p90 in the
    text report, plus machine-readable JSON and Prometheus expositions
    of the same registry. *)

type t

val create : unit -> t

val registry : t -> Gp_telemetry.Metrics.t
(** The backing registry — the families are ordinary metrics
    ([gp_requests_total{kind}], [gp_request_errors_total{kind,code}],
    [gp_request_latency_ns{kind}], ...). *)

val observe :
  t ->
  kind:string ->
  ok:bool ->
  error_code:string option ->
  cached:bool ->
  ns:float ->
  unit

val requests : t -> int
val errors : t -> int

val report : ?cache_stats:Lru.stats list -> t -> string
(** The rendered text report. Quantiles are within-bucket
    log-interpolated estimates (see {!Gp_telemetry.Histogram.quantile}),
    accurate to one bucket ratio (~1.58x). *)

val report_json : ?cache_stats:Lru.stats list -> ?gc:string -> t -> string
(** Machine-readable twin of {!report}: request/error totals, cache
    stats, and the full registry dump
    ({!Gp_telemetry.Metrics.to_json}). [gc], when given, is a
    pre-rendered JSON object of GC counter totals inserted as a ["gc"]
    field (see {!Server.report_json}). *)

val to_prometheus : t -> string
(** Prometheus text exposition of the backing registry. *)

val pp_ns : Format.formatter -> float -> unit
