(* The serving engine: admission control, per-request budgets, dispatch,
   metrics.

   Single-threaded and deterministic: requests are admitted into a bounded
   queue (overflow yields a structured Queue_full response immediately) and
   drained in FIFO order. The clock is injectable, so the timeout path and
   every latency number are reproducible under test. No request — however
   malformed — escapes as an exception: the last-resort handler maps
   anything unexpected to an Internal error response and the server keeps
   serving. *)

module Tel = Gp_telemetry.Tel
module Trace = Gp_telemetry.Trace

type config = {
  caching : bool;
  cache_capacity : int; (* entries per LRU *)
  queue_capacity : int;
  max_steps : int; (* per-request step budget *)
  timeout : float option; (* per-request deadline, seconds *)
  now : unit -> float; (* injectable clock, seconds *)
  slow_log : int; (* slowest requests kept with their span trees *)
}

let default_config =
  { caching = true;
    cache_capacity = 256;
    queue_capacity = 64;
    max_steps = 100_000;
    timeout = None;
    now = Unix.gettimeofday;
    slow_log = 5 }

type slow_entry = {
  se_id : int;
  se_kind : string;
  se_ns : float;
  se_spans : Trace.span list;
}

type t = {
  config : config;
  dispatch : Dispatch.t;
  metrics : Metrics.t;
  queue : (int * Request.t) Queue.t;
  mutable next_id : int;
  mutable slow : slow_entry list; (* slowest first, <= config.slow_log *)
}

let create ?(config = default_config) ~declare_standard () =
  { config;
    dispatch =
      Dispatch.create ~declare_standard
        ~cache_capacity:config.cache_capacity ();
    metrics = Metrics.create ();
    queue = Queue.create ();
    next_id = 0;
    slow = [] }

let config t = t.config
let metrics t = t.metrics
let registry t = Dispatch.registry t.dispatch
let caches t = Dispatch.caches t.dispatch
let cache_stats t = Dispatch.cache_stats (caches t)
let clear_caches t = Dispatch.clear_caches (caches t)
let queue_length t = Queue.length t.queue

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let observe t ~kind ~id ~t0 (result : (Request.payload, Request.error) result)
    ~cached ~steps =
  let ns = (t.config.now () -. t0) *. 1e9 in
  Metrics.observe t.metrics
    ~kind:(match kind with Some k -> Request.kind_name k | None -> "invalid")
    ~ok:(Result.is_ok result)
    ~error_code:
      (match result with
      | Ok _ -> None
      | Error e -> Some (Request.error_code_name e.Request.code))
    ~cached ~ns;
  { Request.rsp_id = id; rsp_kind = kind; rsp_result = result;
    rsp_cached = cached; rsp_steps = steps }

(* Handle one request to completion. Total: budget exhaustion and any
   unexpected exception become structured errors. *)
let handle_core ~id t req =
  let t0 = t.config.now () in
  let budget =
    Budget.create ~max_steps:t.config.max_steps
      ?deadline:(Option.map (fun s -> t0 +. s) t.config.timeout)
      ~now:t.config.now ()
  in
  let result, cached =
    match Dispatch.handle t.dispatch ~caching:t.config.caching ~budget req with
    | result -> result
    | exception Budget.Exhausted Budget.Steps ->
      ( Error
          { Request.code = Request.Over_budget;
            detail =
              Printf.sprintf "request exceeded its %d-step budget"
                t.config.max_steps },
        false )
    | exception Budget.Exhausted Budget.Deadline ->
      ( Error
          { Request.code = Request.Timeout;
            detail =
              Printf.sprintf "request exceeded its %.3fs deadline"
                (Option.value ~default:0.0 t.config.timeout) },
        false )
    | exception exn ->
      ( Error
          { Request.code = Request.Internal;
            detail = Printexc.to_string exn },
        false )
  in
  observe t ~kind:(Some (Request.kind req)) ~id ~t0 result ~cached
    ~steps:(Budget.used budget)

(* Keep the [config.slow_log] slowest requests with the span trees their
   root span covered. The duration ranking a request by is its root
   span's, so the log is self-consistent with the trace export. *)
let record_slow t ~id ~kind spans =
  match List.rev spans with
  | [] -> () (* ring dropped everything: nothing worth keeping *)
  | root :: _ ->
    let entry =
      { se_id = id; se_kind = kind; se_ns = root.Trace.sp_dur_ns;
        se_spans = spans }
    in
    let merged =
      List.merge
        (fun a b -> Float.compare b.se_ns a.se_ns)
        [ entry ] t.slow
    in
    t.slow <- List.filteri (fun i _ -> i < t.config.slow_log) merged

let handle ?id t req =
  let id = match id with Some id -> id | None -> fresh_id t in
  if not (Tel.is_enabled ()) then handle_core ~id t req
  else begin
    let m = Tel.mark () in
    let rsp =
      Tel.with_span ~name:"service.request"
        ~attrs:(fun () ->
          [
            ("kind", Request.kind_name (Request.kind req));
            ("id", string_of_int id);
          ])
        (fun () -> handle_core ~id t req)
    in
    record_slow t ~id
      ~kind:(Request.kind_name (Request.kind req))
      (Tel.spans_since m);
    rsp
  end

(* A request line that did not even parse still gets a full response (and
   a metrics entry under kind "invalid"). *)
let reject_invalid t detail =
  let id = fresh_id t in
  let t0 = t.config.now () in
  observe t ~kind:None ~id ~t0
    (Error { Request.code = Request.Bad_request; detail })
    ~cached:false ~steps:0

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let submit t req =
  if Queue.length t.queue >= t.config.queue_capacity then begin
    let id = fresh_id t in
    let t0 = t.config.now () in
    `Rejected
      (observe t ~kind:(Some (Request.kind req)) ~id ~t0
         (Error
            { Request.code = Request.Queue_full;
              detail =
                Printf.sprintf "queue full (capacity %d)"
                  t.config.queue_capacity })
         ~cached:false ~steps:0)
  end
  else begin
    let id = fresh_id t in
    Queue.add (id, req) t.queue;
    `Admitted id
  end

let drain t =
  let rec go acc =
    match Queue.take_opt t.queue with
    | None -> List.rev acc
    | Some (id, req) -> go (handle ~id t req :: acc)
  in
  go []

(* Submit a burst, then drain: exercises admission control — requests past
   the queue capacity are rejected with Queue_full. *)
let process_burst t reqs =
  let submitted = List.map (fun req -> submit t req) reqs in
  let processed = drain t in
  let processed = ref processed in
  List.map
    (fun outcome ->
      match outcome with
      | `Rejected rsp -> rsp
      | `Admitted id -> (
        match !processed with
        | rsp :: rest when rsp.Request.rsp_id = id ->
          processed := rest;
          rsp
        | _ -> assert false (* drain returns FIFO, ids match *)))
    submitted

(* Steady-state processing: drain whenever the queue fills, so every
   request is eventually served. This is the workload driver's path. *)
let process t reqs =
  let out = ref [] in
  List.iter
    (fun req ->
      match submit t req with
      | `Admitted _ -> ()
      | `Rejected _ ->
        out := List.rev_append (drain t) !out;
        (match submit t req with
        | `Admitted _ -> ()
        | `Rejected rsp -> out := rsp :: !out))
    reqs;
  out := List.rev_append (drain t) !out;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Line-oriented serving                                               *)
(* ------------------------------------------------------------------ *)

let serve_line t line =
  if String.trim line = "" then None
  else
    match Wire.request_of_line line with
    | Ok (id, req) ->
      let id = match id with Some id -> id | None -> fresh_id t in
      Some (handle ~id t req)
    | Error detail -> Some (reject_invalid t detail)

let serve_channel t ic oc =
  let served = ref 0 in
  (try
     while true do
       let line = input_line ic in
       match serve_line t line with
       | None -> ()
       | Some rsp ->
         incr served;
         output_string oc (Wire.response_to_line rsp);
         output_char oc '\n'
     done
   with End_of_file -> ());
  flush oc;
  !served

let report t = Metrics.report ~cache_stats:(cache_stats t) t.metrics
let report_json t = Metrics.report_json ~cache_stats:(cache_stats t) t.metrics

let slow_requests t = t.slow

let pp_slow ppf entries =
  if entries = [] then
    Fmt.string ppf "slow-request log: empty (telemetry disabled or no traffic)"
  else begin
    Fmt.pf ppf "@[<v>slowest requests";
    List.iter
      (fun e ->
        Fmt.pf ppf "@,#%d %s  %a@,%a" e.se_id e.se_kind Trace.pp_dur e.se_ns
          Trace.pp_tree e.se_spans)
      entries;
    Fmt.pf ppf "@]"
  end
