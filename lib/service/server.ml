(* The serving engine: admission control, per-request budgets, dispatch,
   metrics.

   Single-threaded and deterministic: requests are admitted into a bounded
   queue (overflow yields a structured Queue_full response immediately) and
   drained in FIFO order. The clock is injectable, so the timeout path and
   every latency number are reproducible under test. No request — however
   malformed — escapes as an exception: the last-resort handler maps
   anything unexpected to an Internal error response and the server keeps
   serving. *)

module Tel = Gp_telemetry.Tel
module Trace = Gp_telemetry.Trace
module Recorder = Gp_telemetry.Recorder

type config = {
  caching : bool;
  cache_capacity : int; (* entries per LRU *)
  queue_capacity : int;
  max_steps : int; (* per-request step budget *)
  timeout : float option; (* per-request deadline, seconds *)
  now : unit -> float; (* injectable clock, seconds *)
  slow_log : int; (* slowest requests kept with their span trees *)
  flight_capacity : int; (* flight-recorder ring; 0 disables it *)
  flight_slowest : int; (* slowest-k dossiers kept with span trees *)
}

let default_config =
  { caching = true;
    cache_capacity = 256;
    queue_capacity = 64;
    max_steps = 100_000;
    timeout = None;
    now = Unix.gettimeofday;
    slow_log = 5;
    flight_capacity = 512;
    flight_slowest = 8 }

(* The canonical config line: every field that shapes observable
   behaviour, in a fixed order ([now] is process wiring, not behaviour).
   The fingerprint digests this line; a dossier carries both, so replay
   can rebuild the server the dossier's request actually ran under. *)
let config_to_line c =
  Wire.to_string
    (Wire.Obj
       [ ("caching", Wire.Bool c.caching);
         ("cache_capacity", Wire.Int c.cache_capacity);
         ("queue_capacity", Wire.Int c.queue_capacity);
         ("max_steps", Wire.Int c.max_steps);
         ( "timeout",
           match c.timeout with
           | None -> Wire.Null
           | Some s -> Wire.Float s );
         ("slow_log", Wire.Int c.slow_log);
         ("flight_capacity", Wire.Int c.flight_capacity);
         ("flight_slowest", Wire.Int c.flight_slowest) ])

let config_fingerprint c = Digest.to_hex (Digest.string (config_to_line c))

let config_of_line line =
  match Wire.parse line with
  | exception Wire.Error m -> Error ("bad config line: " ^ m)
  | Wire.Obj fields ->
    let int_field name default =
      match List.assoc_opt name fields with
      | Some (Wire.Int i) -> Ok i
      | None -> Ok default
      | Some _ -> Error (Printf.sprintf "config field %S must be an int" name)
    in
    let ( let* ) = Result.bind in
    let* caching =
      match List.assoc_opt "caching" fields with
      | Some (Wire.Bool b) -> Ok b
      | None -> Ok default_config.caching
      | Some _ -> Error "config field \"caching\" must be a boolean"
    in
    let* cache_capacity = int_field "cache_capacity" default_config.cache_capacity in
    let* queue_capacity = int_field "queue_capacity" default_config.queue_capacity in
    let* max_steps = int_field "max_steps" default_config.max_steps in
    let* timeout =
      match List.assoc_opt "timeout" fields with
      | Some (Wire.Float s) -> Ok (Some s)
      | Some (Wire.Int s) -> Ok (Some (float_of_int s))
      | Some Wire.Null | None -> Ok None
      | Some _ -> Error "config field \"timeout\" must be a number or null"
    in
    let* slow_log = int_field "slow_log" default_config.slow_log in
    let* flight_capacity = int_field "flight_capacity" default_config.flight_capacity in
    let* flight_slowest = int_field "flight_slowest" default_config.flight_slowest in
    Ok
      { default_config with
        caching; cache_capacity; queue_capacity; max_steps; timeout;
        slow_log; flight_capacity; flight_slowest }
  | _ -> Error "bad config line: expected a JSON object"

type slow_entry = {
  se_id : int;
  se_kind : string;
  se_ns : float;
  se_spans : Trace.span list;
}

type t = {
  config : config;
  dispatch : Dispatch.t;
  metrics : Metrics.t;
  queue : (int * Request.t) Queue.t;
  recorder : Recorder.t option; (* flight recorder; None when disabled *)
  config_line : string; (* precomputed: every dossier carries both *)
  config_fp : string;
  out_buf : Buffer.t; (* reused response render buffer (serve_channel) *)
  cc_before : int array; (* reused cache-counter snapshots: hit/miss *)
  cc_after : int array; (* pairs per cache, Dispatch.cache_names order *)
  mutable next_id : int;
  mutable slow : slow_entry list; (* slowest first, <= config.slow_log *)
}

let create ?(config = default_config) ~declare_standard () =
  { config;
    dispatch =
      Dispatch.create ~declare_standard
        ~cache_capacity:config.cache_capacity ();
    metrics = Metrics.create ();
    queue = Queue.create ();
    recorder =
      (if config.flight_capacity > 0 then
         Some
           (Recorder.create ~capacity:config.flight_capacity
              ~slowest:config.flight_slowest ())
       else None);
    config_line = config_to_line config;
    config_fp = config_fingerprint config;
    out_buf = Buffer.create 1024;
    cc_before = Array.make (2 * Array.length Dispatch.cache_names) 0;
    cc_after = Array.make (2 * Array.length Dispatch.cache_names) 0;
    next_id = 0;
    slow = [] }

let config t = t.config
let metrics t = t.metrics
let flight t = t.recorder
let registry t = Dispatch.registry t.dispatch
let caches t = Dispatch.caches t.dispatch
let cache_stats t = Dispatch.cache_stats (caches t)
let clear_caches t = Dispatch.clear_caches (caches t)
let queue_length t = Queue.length t.queue

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let observe t ~kind ~id ~t0 (result : (Request.payload, Request.error) result)
    ~cached ~steps =
  let ns = (t.config.now () -. t0) *. 1e9 in
  Metrics.observe t.metrics
    ~kind:(match kind with Some k -> Request.kind_name k | None -> "invalid")
    ~ok:(Result.is_ok result)
    ~error_code:
      (match result with
      | Ok _ -> None
      | Error e -> Some (Request.error_code_name e.Request.code))
    ~cached ~ns;
  { Request.rsp_id = id; rsp_kind = kind; rsp_result = result;
    rsp_cached = cached; rsp_steps = steps }

(* Handle one request to completion. Total: budget exhaustion and any
   unexpected exception become structured errors. *)
let handle_core ~id t req =
  let t0 = t.config.now () in
  let budget =
    Budget.create ~max_steps:t.config.max_steps
      ?deadline:(Option.map (fun s -> t0 +. s) t.config.timeout)
      ~now:t.config.now ()
  in
  let result, cached =
    match Dispatch.handle t.dispatch ~caching:t.config.caching ~budget req with
    | result -> result
    | exception Budget.Exhausted Budget.Steps ->
      ( Error
          { Request.code = Request.Over_budget;
            detail =
              Printf.sprintf "request exceeded its %d-step budget"
                t.config.max_steps },
        false )
    | exception Budget.Exhausted Budget.Deadline ->
      ( Error
          { Request.code = Request.Timeout;
            detail =
              Printf.sprintf "request exceeded its %.3fs deadline"
                (Option.value ~default:0.0 t.config.timeout) },
        false )
    | exception exn ->
      ( Error
          { Request.code = Request.Internal;
            detail = Printexc.to_string exn },
        false )
  in
  observe t ~kind:(Some (Request.kind req)) ~id ~t0 result ~cached
    ~steps:(Budget.used budget)

(* Keep the [config.slow_log] slowest requests with the span trees their
   root span covered. The duration ranking a request by is its root
   span's, so the log is self-consistent with the trace export. *)
let record_slow t ~id ~kind spans =
  match List.rev spans with
  | [] -> () (* ring dropped everything: nothing worth keeping *)
  | root :: _ ->
    let entry =
      { se_id = id; se_kind = kind; se_ns = root.Trace.sp_dur_ns;
        se_spans = spans }
    in
    let merged =
      List.merge
        (fun a b -> Float.compare b.se_ns a.se_ns)
        [ entry ] t.slow
    in
    t.slow <- List.filteri (fun i _ -> i < t.config.slow_log) merged

(* ------------------------------------------------------------------ *)
(* Flight-recorder dossier assembly                                    *)
(* ------------------------------------------------------------------ *)

module Tmetrics = Gp_telemetry.Metrics

(* Sink metric family totals, or [] when telemetry is off — the dossier
   then simply records no metric deltas. *)
let metric_totals () =
  match Tel.current () with
  | Some s -> Tmetrics.totals s.Tel.metrics
  | None -> []

(* New families only ever appear in [after]; totals are monotone, so a
   missing [before] entry reads as 0. Zero deltas are dropped. *)
let metric_delta before after =
  List.filter_map
    (fun (name, v) ->
      let prev = Option.value ~default:0.0 (List.assoc_opt name before) in
      let d = v -. prev in
      if d <> 0.0 then Some (name, d) else None)
    after

(* The per-request cache chain diffs hit/miss counters around the
   request. The snapshots go through [Dispatch.cache_counters_into] into
   the server's two reused int arrays — no stats records per request;
   the chain list itself only materializes the (few) caches the request
   touched. Per-request sandbox caches (Check-with-defs) never appear
   here — by design, they are private to one request. *)
let cache_chain t =
  Dispatch.cache_counters_into (Dispatch.caches t.dispatch) t.cc_after;
  let rec go i acc =
    if i < 0 then acc
    else
      let dh = t.cc_after.(2 * i) - t.cc_before.(2 * i) in
      let dm = t.cc_after.((2 * i) + 1) - t.cc_before.((2 * i) + 1) in
      go (i - 1)
        (if dh <> 0 || dm <> 0 then (Dispatch.cache_names.(i), dh, dm) :: acc
         else acc)
  in
  go (Array.length Dispatch.cache_names - 1) []

let record_dossier t ~id ~kind ~wire ~spans ~dur_ns ~cache_chain
    ~metric_deltas (rsp : Request.response) =
  match t.recorder with
  | None -> ()
  | Some recorder ->
    let outcome, detail =
      match rsp.Request.rsp_result with
      | Ok _ -> ("ok", "")
      | Error e -> (Request.error_code_name e.Request.code, e.Request.detail)
    in
    Recorder.record recorder
      { Recorder.do_id = id;
        do_kind = kind;
        do_wire = wire;
        do_generation = Gp_concepts.Registry.generation (registry t);
        do_config = t.config_line;
        do_config_fp = t.config_fp;
        do_outcome = outcome;
        do_detail = detail;
        do_cached = rsp.Request.rsp_cached;
        do_steps = rsp.Request.rsp_steps;
        do_dur_ns = dur_ns;
        do_response_fp = lazy (Request.response_fingerprint rsp);
        do_cache_chain = cache_chain;
        do_spans = spans;
        do_metric_deltas = metric_deltas }

(* [wire], when given, is the raw line the request arrived on — reused
   verbatim in the dossier instead of re-serializing the request.
   [context], when given, is the inbound cluster trace context: the root
   span names the distributed trace and parent span it belongs to, so a
   node-local service trace can be joined to the cluster-wide tree. *)
let handle_recorded ?id ?context ?wire t req =
  let id = match id with Some id -> id | None -> fresh_id t in
  let kind = Request.kind_name (Request.kind req) in
  let recording = Option.is_some t.recorder in
  let wall0 = if recording then t.config.now () else 0.0 in
  if recording then
    Dispatch.cache_counters_into (Dispatch.caches t.dispatch) t.cc_before;
  let metrics_before = if recording then metric_totals () else [] in
  let rsp, spans =
    if not (Tel.is_enabled ()) then (handle_core ~id t req, [])
    else begin
      let m = Tel.mark () in
      let rsp =
        Tel.with_span ~name:"service.request"
          ~attrs:(fun () ->
            let base = [ ("kind", kind); ("id", string_of_int id) ] in
            match context with
            | Some c when not (Gp_telemetry.Context.is_none c) ->
              ("trace", string_of_int (Gp_telemetry.Context.trace c))
              :: ("parent_span",
                  string_of_int (Gp_telemetry.Context.span c))
              :: base
            | _ -> base)
          (fun () -> handle_core ~id t req)
      in
      let spans = Tel.spans_since m in
      record_slow t ~id ~kind spans;
      (rsp, spans)
    end
  in
  (match t.recorder with
  | None -> ()
  | Some recorder ->
    (* rank by the root span's duration when telemetry is on — the same
       number the slow log and trace export show — else wall clock *)
    let dur_ns =
      match List.rev spans with
      | root :: _ -> root.Trace.sp_dur_ns
      | [] -> (t.config.now () -. wall0) *. 1e9
    in
    (* the after-snapshot and delta matter only when the recorder will
       keep the payload (non-ok outcome or slowest-k) — skip both on
       the steady-state path *)
    let metric_deltas =
      if
        Recorder.wants_payload recorder
          ~ok:(Result.is_ok rsp.Request.rsp_result)
          ~dur_ns
      then metric_delta metrics_before (metric_totals ())
      else []
    in
    let wire =
      match wire with
      | Some line -> Lazy.from_val line
      | None -> lazy (Wire.request_to_line ~id req)
    in
    record_dossier t ~id ~kind ~wire ~spans ~dur_ns
      ~cache_chain:(cache_chain t) ~metric_deltas rsp);
  rsp

let handle ?id ?context t req = handle_recorded ?id ?context t req

(* A request line that did not even parse still gets a full response (and
   a metrics entry under kind "invalid", and a dossier carrying the raw
   line — the only re-servable rendering a non-request has). *)
let reject_invalid ?(line = "") t detail =
  let id = fresh_id t in
  let t0 = t.config.now () in
  let rsp =
    observe t ~kind:None ~id ~t0
      (Error { Request.code = Request.Bad_request; detail })
      ~cached:false ~steps:0
  in
  record_dossier t ~id ~kind:"invalid" ~wire:(Lazy.from_val line) ~spans:[]
    ~dur_ns:((t.config.now () -. t0) *. 1e9)
    ~cache_chain:[] ~metric_deltas:[] rsp;
  rsp

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let submit t req =
  if Queue.length t.queue >= t.config.queue_capacity then begin
    let id = fresh_id t in
    let t0 = t.config.now () in
    `Rejected
      (observe t ~kind:(Some (Request.kind req)) ~id ~t0
         (Error
            { Request.code = Request.Queue_full;
              detail =
                Printf.sprintf "queue full (capacity %d)"
                  t.config.queue_capacity })
         ~cached:false ~steps:0)
  end
  else begin
    let id = fresh_id t in
    Queue.add (id, req) t.queue;
    `Admitted id
  end

let drain t =
  let rec go acc =
    match Queue.take_opt t.queue with
    | None -> List.rev acc
    | Some (id, req) -> go (handle ~id t req :: acc)
  in
  go []

(* Submit a burst, then drain: exercises admission control — requests past
   the queue capacity are rejected with Queue_full. *)
let process_burst t reqs =
  let submitted = List.map (fun req -> submit t req) reqs in
  let processed = drain t in
  let processed = ref processed in
  List.map
    (fun outcome ->
      match outcome with
      | `Rejected rsp -> rsp
      | `Admitted id -> (
        match !processed with
        | rsp :: rest when rsp.Request.rsp_id = id ->
          processed := rest;
          rsp
        | _ -> assert false (* drain returns FIFO, ids match *)))
    submitted

(* Steady-state processing: drain whenever the queue fills, so every
   request is eventually served. This is the workload driver's path. *)
let process t reqs =
  let out = ref [] in
  List.iter
    (fun req ->
      match submit t req with
      | `Admitted _ -> ()
      | `Rejected _ ->
        out := List.rev_append (drain t) !out;
        (match submit t req with
        | `Admitted _ -> ()
        | `Rejected rsp -> out := rsp :: !out))
    reqs;
  out := List.rev_append (drain t) !out;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Line-oriented serving                                               *)
(* ------------------------------------------------------------------ *)

(* same whitespace set [String.trim] strips, without copying the line *)
let is_blank line =
  let n = String.length line in
  let rec go i =
    i >= n
    ||
    match String.unsafe_get line i with
    | ' ' | '\t' | '\n' | '\r' | '\012' -> go (i + 1)
    | _ -> false
  in
  go 0

let serve_line t line =
  if is_blank line then None
  else
    let decoded =
      (* a dedicated span so [Trace.folded --gc] attributes wire-parse
         allocation separately from dispatch *)
      if Tel.is_enabled () then
        Tel.with_span ~name:"wire.parse" (fun () -> Wire.request_of_line line)
      else Wire.request_of_line line
    in
    match decoded with
    | Ok (id, req) ->
      let id = match id with Some id -> id | None -> fresh_id t in
      Some (handle_recorded ~id ~wire:line t req)
    | Error detail -> Some (reject_invalid ~line t detail)

let serve_channel t ic oc =
  let served = ref 0 in
  (try
     while true do
       let line = input_line ic in
       match serve_line t line with
       | None -> ()
       | Some rsp ->
         incr served;
         let buf = t.out_buf in
         Buffer.clear buf;
         if Tel.is_enabled () then
           Tel.with_span ~name:"wire.render" (fun () ->
               Wire.response_into buf rsp)
         else Wire.response_into buf rsp;
         Buffer.add_char buf '\n';
         Buffer.output_buffer oc buf
     done
   with End_of_file -> ());
  flush oc;
  !served

let report t = Metrics.report ~cache_stats:(cache_stats t) t.metrics

(* GC counter totals for the machine report ([gp serve --stats-json]):
   process-lifetime allocation alongside the request/cache numbers, so a
   stats scrape shows bytes-per-request trends without a profiler. *)
let gc_json () =
  let q = Gc.quick_stat () in
  Printf.sprintf
    "{\"allocated_bytes\":%.0f,\"minor_words\":%.0f,\"promoted_words\":%.0f,\"major_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d}"
    (Gc.allocated_bytes ()) q.Gc.minor_words q.Gc.promoted_words
    q.Gc.major_words q.Gc.minor_collections q.Gc.major_collections
    q.Gc.heap_words

let report_json t =
  Metrics.report_json ~cache_stats:(cache_stats t) ~gc:(gc_json ()) t.metrics

let slow_requests t = t.slow

let pp_slow ppf entries =
  if entries = [] then
    Fmt.string ppf "slow-request log: empty (telemetry disabled or no traffic)"
  else begin
    Fmt.pf ppf "@[<v>slowest requests";
    List.iter
      (fun e ->
        Fmt.pf ppf "@,#%d %s  %a@,%a" e.se_id e.se_kind Trace.pp_dur e.se_ns
          Trace.pp_tree e.se_spans)
      entries;
    Fmt.pf ppf "@]"
  end
