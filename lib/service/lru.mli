(** Content-keyed LRU memo cache with hit/miss accounting.

    Keys are canonical content strings ({!Request.key},
    {!Gp_concepts.Propagate.request_key}), so cache identity is data
    identity: nothing is ever invalidated, only evicted by recency when
    the capacity bound is hit. *)

type 'v t

type stats = {
  st_name : string;
  st_capacity : int;
  st_size : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

val create : capacity:int -> string -> 'v t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val name : _ t -> string
val size : _ t -> int

val find : 'v t -> string -> 'v option
(** Records a hit or miss; a hit refreshes recency. *)

val mem : _ t -> string -> bool
(** Pure membership probe: no stats traffic, no recency refresh. *)

val add : 'v t -> string -> 'v -> unit
(** Insert as most-recent, replacing any previous binding; evicts the
    least-recently-used entry when full. *)

val find_or_compute : 'v t -> enabled:bool -> string -> (unit -> 'v) -> 'v * bool
(** [(value, was_hit)]. With [enabled:false] the cache is bypassed
    entirely — no lookup, no insertion, no stats — so a cache-off server
    reports all-zero tables. *)

val clear : 'v t -> unit
(** Drop all entries; stats are kept (see {!reset_stats}). *)

val reset_stats : _ t -> unit
val stats : _ t -> stats
val hit_ratio : stats -> float

val hits : _ t -> int
(** Allocation-free counter read — the per-request cache-delta snapshot
    uses these instead of materializing {!stats} records. *)

val misses : _ t -> int

val keys_mru_first : _ t -> string list
(** Recency order, most-recent first — part of the contract, property
    tested. *)

val pp_stats : Format.formatter -> stats -> unit
