(* The dispatcher: one handler per request kind over the existing
   libraries, threaded through the memo caches and the per-request budget.

   Handlers are total over well-typed requests: library exceptions that a
   request can legitimately provoke (parse errors, unknown names,
   non-terminating rewrite systems) map to structured errors; anything
   else is caught by the server and reported as Internal. Budget steps are
   charged at stage boundaries — per declaration, statement, theorem,
   obligation — so over-budget behaviour is deterministic. *)

open Gp_concepts

type caches = {
  closures : string list Lru.t;
      (* propagation closures, pre-rendered: the cache stores the
         obligation strings the payload ships, so a hit allocates no
         per-request rendering *)
  defs : Lang.item list Lru.t; (* parsed .gpc declarations *)
  lint : Request.payload Lru.t; (* Linted payloads by program hash *)
  cert : Gp_simplicissimus.Certify.certification list Lru.t;
      (* certified rewrite rules *)
  proofs : (string * bool) list Lru.t; (* checked proof instantiations *)
  rewrites : Gp_simplicissimus.Engine.result Lru.t; (* normal forms by expr *)
  numerics : Request.payload Lru.t; (* Computed payloads by (op,triple) *)
}

let create_caches ~capacity =
  { closures = Lru.create ~capacity "closures";
    defs = Lru.create ~capacity "defs";
    lint = Lru.create ~capacity "lint";
    cert = Lru.create ~capacity:4 "cert";
    proofs = Lru.create ~capacity "proofs";
    rewrites = Lru.create ~capacity "rewrites";
    numerics = Lru.create ~capacity "numerics" }

let cache_stats c =
  [ Lru.stats c.closures; Lru.stats c.defs; Lru.stats c.lint;
    Lru.stats c.cert; Lru.stats c.proofs; Lru.stats c.rewrites;
    Lru.stats c.numerics ]

(* Allocation-free twin of [cache_stats] for the per-request cache-delta
   snapshot: hit/miss counters written into a caller-owned array
   ([hits.(2i)], [misses.(2i+1)]), one slot pair per cache in
   [cache_names] order. *)
let cache_names =
  [| "closures"; "defs"; "lint"; "cert"; "proofs"; "rewrites"; "numerics" |]

let cache_counters_into c (dst : int array) =
  let put i (lru : _ Lru.t) =
    dst.(2 * i) <- Lru.hits lru;
    dst.((2 * i) + 1) <- Lru.misses lru
  in
  put 0 c.closures;
  put 1 c.defs;
  put 2 c.lint;
  put 3 c.cert;
  put 4 c.proofs;
  put 5 c.rewrites;
  put 6 c.numerics

let clear_caches c =
  Lru.clear c.closures;
  Lru.clear c.defs;
  Lru.clear c.lint;
  Lru.clear c.cert;
  Lru.clear c.proofs;
  Lru.clear c.rewrites;
  Lru.clear c.numerics

type t = {
  registry : Registry.t; (* the shared standard world; never mutated here *)
  declare_standard : Registry.t -> unit; (* to build per-request sandboxes *)
  insts : Gp_simplicissimus.Instances.t;
  rules : Gp_simplicissimus.Rules.t list;
  select : Gp_structla.Select.t; (* the three numeric overload generics *)
  caches : caches;
}

let create ~declare_standard ~cache_capacity () =
  let registry = Registry.create () in
  declare_standard registry;
  { registry;
    declare_standard;
    insts = Gp_simplicissimus.Instances.standard ();
    rules =
      Gp_simplicissimus.Rules.builtin
      @ [ Gp_simplicissimus.Rules.lidia_inverse ];
    select = Gp_structla.Select.create ();
    caches = create_caches ~capacity:cache_capacity }

let registry t = t.registry
let caches t = t.caches

let err code detail = Error { Request.code; detail }

(* ------------------------------------------------------------------ *)
(* Stage helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Parse a .gpc source through the defs cache. *)
let parsed_defs t ~caching ~budget source =
  let key = "gpc|" ^ Digest.to_hex (Digest.string source) in
  let items, hit =
    Lru.find_or_compute t.caches.defs ~enabled:caching key (fun () ->
        Lang.parse_string source)
  in
  Budget.spend budget (if hit then 1 else 1 + List.length items);
  (items, hit)

(* The certified-rule set, computed once (per eviction) and shared by
   every optimize request: each built-in rule's backing theorem runs
   through the proof checker — the expensive stage the cache elides. *)
let certifications t ~caching ~budget =
  let certs, hit =
    Lru.find_or_compute t.caches.cert ~enabled:caching "builtin" (fun () ->
        Gp_simplicissimus.Certify.certify_builtin ())
  in
  Budget.spend budget (if hit then 1 else 10 * List.length certs);
  (certs, hit)

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let handle_check t ~caching ~budget ~concept ~types ~nominal ~defs =
  let sandbox_result =
    match defs with
    | None -> Ok (t.registry, false)
    | Some source -> (
      match parsed_defs t ~caching ~budget source with
      | items, hit -> (
        let reg = Registry.create () in
        t.declare_standard reg;
        Budget.spend budget (List.length items);
        match Lang.load_items reg items with
        | () -> Ok (reg, hit)
        | exception Registry.Duplicate what ->
          Error ({ Request.code = Request.Parse_failure;
                   detail = "duplicate declaration of " ^ what }, hit))
      | exception Lang.Parse_error { line; col; message } ->
        Error ({ Request.code = Request.Parse_failure;
                 detail = Printf.sprintf ".gpc:%d:%d: %s" line col message },
               false))
  in
  match sandbox_result with
  | Error (e, hit) -> (Error e, hit)
  | Ok (reg, hit) ->
    let mode = if nominal then Check.Nominal else Check.Structural in
    let args = List.map (fun ty -> Ctype.Named ty) types in
    let report = Check.check ~mode reg concept args in
    Budget.spend budget
      (5
      + List.length report.Check.rep_failures
      + List.length report.Check.rep_warnings);
    ( Ok
        (Request.Checked
           { ok = Check.ok report;
             failures = List.length report.Check.rep_failures;
             warnings = List.length report.Check.rep_warnings;
             report = Fmt.str "%a" Check.pp_report report }),
      hit )

let handle_parse t ~caching ~budget ~source =
  match parsed_defs t ~caching ~budget source with
  | items, hit ->
    let count p = List.length (List.filter p items) in
    ( Ok
        (Request.Parsed
           { items = List.length items;
             concepts = count (function Lang.Iconcept _ -> true | _ -> false);
             models = count (function Lang.Imodel _ -> true | _ -> false) }),
      hit )
  | exception Lang.Parse_error { line; col; message } ->
    (err Request.Parse_failure (Printf.sprintf ".gpc:%d:%d: %s" line col message),
     false)

let handle_lint t ~caching ~budget ~source =
  let open Gp_stllint in
  let key = "lint|" ^ Digest.to_hex (Digest.string source) in
  match
    Lru.find_or_compute t.caches.lint ~enabled:caching key (fun () ->
        let program = Parser.parse_program source in
        Budget.spend budget (List.length program);
        let ds = Interp.check program in
        Request.Linted
          { errors = List.length (Interp.errors ds);
            warnings = List.length (Interp.warnings ds);
            suggestions = List.length (Interp.suggestions ds);
            messages =
              List.map (fun d -> Fmt.str "%a" Interp.pp_diagnostic d) ds })
  with
  | (Request.Linted { messages; _ } as payload), hit ->
    (* one diagnostic per message, so the budget charge is unchanged *)
    Budget.spend budget (1 + List.length messages);
    (Ok payload, hit)
  | _, _ -> assert false (* the lint cache only ever stores [Linted] *)
  | exception Parser.Parse_error { line; message } ->
    (err Request.Parse_failure (Printf.sprintf "program:%d: %s" line message), false)

let handle_optimize t ~caching ~budget ~expr ~certified_only =
  let open Gp_simplicissimus in
  match Sparser.parse expr with
  | exception Sparser.Parse_error m -> (err Request.Parse_failure m, false)
  | e -> (
    (* Certification is the expensive stage; the engine's only_certified
       mode reads the verdicts the certifier stamped on the rules. *)
    let _, cert_hit = certifications t ~caching ~budget in
    let key =
      (if certified_only then "rw|true|" else "rw|false|")
      ^ Digest.to_hex (Digest.string (Expr.to_string e))
    in
    match
      Lru.find_or_compute t.caches.rewrites ~enabled:caching key (fun () ->
          Engine.rewrite ~only_certified:certified_only ~rules:t.rules
            ~insts:t.insts e)
    with
    | r, hit ->
      Budget.spend budget (1 + List.length r.Engine.steps);
      ( Ok
          (Request.Optimized
             { output = Expr.to_string r.Engine.output;
               steps = List.length r.Engine.steps;
               ops_before = r.Engine.ops_before;
               ops_after = r.Engine.ops_after }),
        hit && cert_hit )
    | exception Engine.Did_not_terminate _ ->
      (err Request.Over_budget "rewriting exceeded its step budget", false))

(* The prove tables mirror bin/gp's prove command: a theory names its
   instance mappings, per-instance axioms, and theorem builders. *)
let prove_plan theory instance =
  let open Gp_athena in
  let for_lts lts theorems axioms_of =
    List.map
      (fun lt ->
        ( lt,
          axioms_of lt,
          List.map (fun f -> f ~lt) theorems ))
      lts
  in
  let plan =
    match theory with
    | "swo" ->
      Some
        (for_lts [ "int_lt"; "string_lt" ]
           [ Theorems.swo_e_reflexive; Theorems.swo_e_symmetric;
             Theorems.swo_e_transitive; Theorems.swo_asymmetric ]
           (fun lt -> Theory.strict_weak_order ~lt))
    | "orders" ->
      Some
        (List.map
           (fun leq ->
             ( leq,
               Theory.total_order ~leq,
               List.map
                 (fun f -> f ~leq)
                 [ Theorems.strict_irreflexive; Theorems.strict_transitive;
                   Theorems.strict_equiv_transitive ] ))
           [ "int_le"; "string_le"; "rational_le" ])
    | "monoid" ->
      Some
        (List.map
           (fun m ->
             ( Theory.map_name m,
               Theory.monoid m,
               List.map
                 (fun f -> f m)
                 [ Theorems.monoid_right_identity;
                   Theorems.monoid_identity_unique ] ))
           Theory.monoid_instances)
    | "group" ->
      Some
        (List.map
           (fun m ->
             ( Theory.map_name m,
               Theory.group_minimal m,
               List.map
                 (fun f -> f m)
                 [ Theorems.group_right_inverse; Theorems.group_right_identity;
                   Theorems.group_double_inverse;
                   Theorems.group_left_cancellation ] ))
           Theory.group_instances)
    | "ring" ->
      let rm =
        { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul }
      in
      Some
        [ ( "int",
            Theory.ring rm,
            List.map
              (fun f -> f rm)
              [ Theorems.ring_mul_zero; Theorems.ring_zero_mul ] ) ]
    | _ -> None
  in
  match plan with
  | None -> Error ("unknown theory " ^ theory)
  | Some all -> (
    match instance with
    | None -> Ok all
    | Some name -> (
      match List.filter (fun (n, _, _) -> n = name) all with
      | [] ->
        Error
          (Printf.sprintf "theory %s has no instance %s (have: %s)" theory
             name
             (String.concat ", " (List.map (fun (n, _, _) -> n) all)))
      | some -> Ok some))

let handle_prove t ~caching ~budget ~theory ~instance =
  let open Gp_athena in
  match prove_plan theory instance with
  | Error detail -> (err Request.Unknown_name detail, false)
  | Ok plan -> (
    let key =
      "prove|" ^ theory ^ "|" ^ Option.value ~default:"*" instance
    in
    match
      Lru.find_or_compute t.caches.proofs ~enabled:caching key (fun () ->
          List.concat_map
            (fun (iname, axioms, theorems) ->
              List.map
                (fun (thm : Theorems.theorem) ->
                  (* proof checking is the expensive stage: charge per
                     theorem before running the checker *)
                  Budget.spend budget 25;
                  ( iname ^ "/" ^ thm.Theorems.thm_name,
                    Theorems.verify ~axioms thm = Deduction.Proved ))
                theorems)
            plan)
    with
    | verdicts, hit ->
      Budget.spend budget 1;
      let failed = List.length (List.filter (fun (_, ok) -> not ok) verdicts) in
      (Ok (Request.Proved { checked = List.length verdicts; failed }), hit))

let handle_closure t ~caching ~budget ~concept ~types =
  match Registry.find_concept t.registry concept with
  | None -> (err Request.Unknown_name ("unknown concept " ^ concept), false)
  | Some _ ->
    let args = List.map (fun ty -> Ctype.Named ty) types in
    let key = Propagate.request_key t.registry concept args in
    let obligations, hit =
      (* one rendered string per obligation, so lengths — and therefore
         the budget charge — match the unrendered closure exactly *)
      Lru.find_or_compute t.caches.closures ~enabled:caching key (fun () ->
          List.map
            (fun ob -> Fmt.str "%a" Propagate.pp_obligation ob)
            (Propagate.closure t.registry concept args))
    in
    Budget.spend budget (if hit then 1 else 1 + List.length obligations);
    (Ok (Request.Closed { size = List.length obligations; obligations }), hit)

(* Structure-aware numerics: regenerate the matrix from the request's
   (structure, n, seed) triple, classify it, and let concept-guided
   overload resolution pick the kernel. The exact kernel step count is
   the budget charge, levied after the cache probe on hit and miss alike
   — like the optimizer's rewrite steps — so Over_budget outcomes are
   cache-independent, which deterministic replay requires. *)

let max_numeric_n = 256

let handle_numeric t ~caching ~budget ~op ~structure ~n ~seed =
  let open Gp_structla in
  if not (Mat.known_structure structure) then
    ( err Request.Unknown_name
        (Printf.sprintf "unknown structure %S (have: %s)" structure
           (String.concat ", " Mat.structure_names)),
      false )
  else if n < 1 || n > max_numeric_n then
    ( err Request.Bad_request
        (Printf.sprintf "n=%d outside 1..%d" n max_numeric_n),
      false )
  else begin
    let key =
      "num|" ^ Select.op_name op ^ "|" ^ structure ^ "|" ^ string_of_int n
      ^ "|" ^ string_of_int seed
    in
    let payload, hit =
      Lru.find_or_compute t.caches.numerics ~enabled:caching key (fun () ->
          let d = Option.get (Mat.generate_dense ~structure ~n ~seed) in
          let m = Detect.classify d in
          let steps, outcome =
            match op with
            | Select.Matvec ->
              ( Kernels.matvec_steps m,
                Result.map
                  (fun (k, y) -> (k, Mat.checksum_vec y))
                  (Select.matvec t.registry t.select m
                     (Mat.generate_vec ~n ~seed)) )
            | Select.Matmul ->
              ( Kernels.matmul_steps m,
                Result.map
                  (fun (k, c) -> (k, Mat.checksum_dense (Mat.to_dense c)))
                  (Select.matmul t.registry t.select m m) )
            | Select.Solve ->
              ( Kernels.solve_steps m,
                Result.map
                  (fun (k, x) -> (k, Mat.checksum_vec x))
                  (Select.solve t.registry t.select m
                     (Mat.generate_vec ~n ~seed)) )
          in
          match outcome with
          | Ok (kernel, checksum) ->
            Request.Computed
              { kernel; detected = Mat.structure_name m; n; steps; checksum }
          | Error diag ->
            (* every carrier has a dense fallback for all three generics,
               so a resolution failure here is a dispatcher bug: escape
               and let the server report Internal *)
            failwith diag)
    in
    (match payload with
    | Request.Computed { steps; _ } -> Budget.spend budget (1 + steps)
    | _ -> Budget.spend budget 1);
    (Ok payload, hit)
  end

let handle t ~caching ~budget (req : Request.t) :
    (Request.payload, Request.error) result * bool =
  match req with
  | Request.Check { concept; types; nominal; defs } ->
    handle_check t ~caching ~budget ~concept ~types ~nominal ~defs
  | Request.Parse { source } -> handle_parse t ~caching ~budget ~source
  | Request.Lint { source } -> handle_lint t ~caching ~budget ~source
  | Request.Optimize { expr; certified_only } ->
    handle_optimize t ~caching ~budget ~expr ~certified_only
  | Request.Prove { theory; instance } ->
    handle_prove t ~caching ~budget ~theory ~instance
  | Request.Closure { concept; types } ->
    handle_closure t ~caching ~budget ~concept ~types
  | Request.Matvec { structure; n; seed } ->
    handle_numeric t ~caching ~budget ~op:Gp_structla.Select.Matvec ~structure
      ~n ~seed
  | Request.Matmul { structure; n; seed } ->
    handle_numeric t ~caching ~budget ~op:Gp_structla.Select.Matmul ~structure
      ~n ~seed
  | Request.Solve { structure; n; seed } ->
    handle_numeric t ~caching ~budget ~op:Gp_structla.Select.Solve ~structure
      ~n ~seed
