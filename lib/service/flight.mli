(** Deterministic replay of a flight-recorder dump.

    {!replay} rebuilds a server from a dossier's recorded config line —
    fresh caches, fresh registry — re-serves each dossier's wire line in
    recorded order, and compares {!Request.response_fingerprint}s. The
    fingerprint excludes ids, cache provenance and step accounting, so a
    cold-cache replay must reproduce a warm-cache recording bit-for-bit;
    a divergence means the service broke determinism (or the dump was
    tampered with). *)

val dossier_of_line : string -> (Gp_telemetry.Recorder.dossier, string) result
(** Decode one JSONL dossier line ({!Gp_telemetry.Recorder.dossier_to_json}
    inverse). *)

val of_jsonl : string -> (Gp_telemetry.Recorder.dossier list, string) result
(** Decode a whole dump; blank lines are skipped, errors carry the
    1-based line number. *)

val load : string -> (Gp_telemetry.Recorder.dossier list, string) result
(** {!of_jsonl} on a file's contents; [Error] on I/O failure. *)

(** {2 Replay} *)

type divergence = {
  dv_dossier : Gp_telemetry.Recorder.dossier;  (** what was recorded *)
  dv_response : Request.response;  (** what replay produced instead *)
  dv_response_fp : string;
  dv_spans : Gp_telemetry.Trace.span list;
      (** the replayed request's span tree, for diffing against
          [dv_dossier.do_spans] *)
}

type outcome = {
  rep_config : Server.config;  (** the config replay ran under *)
  rep_total : int;
  rep_matched : int;
  rep_generation_mismatches : int;
      (** dossiers recorded under a registry generation different from
          the replay server's — reported as a warning, not a failure *)
  rep_diverged : divergence list;  (** recorded order *)
}

val replay :
  ?config:Server.config ->
  declare_standard:(Gp_concepts.Registry.t -> unit) ->
  Gp_telemetry.Recorder.dossier list ->
  (outcome, string) result
(** Re-execute the dossiers in order against a freshly built server
    under a fresh telemetry sink (installed for the duration, previous
    state restored). [config] defaults to decoding the {e first}
    dossier's recorded config line; [Error] when the list is empty or
    that line does not decode. *)

val all_matched : outcome -> bool

val pp_divergence : Format.formatter -> divergence -> unit
(** Wire line, recorded vs replayed outcome/fingerprint, and both span
    trees when present. *)

val pp_outcome : Format.formatter -> outcome -> unit
