(** The dispatcher: one handler per request kind over the existing
    libraries, threaded through the memo caches and the per-request
    budget.

    Handlers are total over well-typed requests: parse errors, unknown
    names and rewrite non-termination become structured errors; budget
    exhaustion escapes as {!Budget.Exhausted} for the server to convert.
    The shared standard registry is never mutated — [Check] requests
    carrying extra [.gpc] declarations get a per-request sandbox. *)

type caches = {
  closures : string list Lru.t;
      (** pre-rendered obligation strings — what the [Closed] payload
          ships, so hits skip per-request rendering *)
  defs : Gp_concepts.Lang.item list Lru.t;
  lint : Request.payload Lru.t;
      (** [Linted] payloads by program hash, messages pre-rendered *)
  cert : Gp_simplicissimus.Certify.certification list Lru.t;
  proofs : (string * bool) list Lru.t;
  rewrites : Gp_simplicissimus.Engine.result Lru.t;
  numerics : Request.payload Lru.t;
      (** [Computed] payloads keyed by (operation, structure, n, seed) *)
}

val create_caches : capacity:int -> caches
val cache_stats : caches -> Lru.stats list
val clear_caches : caches -> unit

val cache_names : string array
(** Cache names in {!cache_stats} order. *)

val cache_counters_into : caches -> int array -> unit
(** Allocation-free twin of {!cache_stats} for per-request snapshot
    deltas: writes hit/miss counters into a caller-owned array —
    [dst.(2i)] hits, [dst.(2i+1)] misses, one pair per cache in
    {!cache_names} order (so [dst] must hold at least
    [2 * Array.length cache_names] slots). *)

type t

val create :
  declare_standard:(Gp_concepts.Registry.t -> unit) ->
  cache_capacity:int ->
  unit ->
  t
(** [declare_standard] populates a fresh registry with the standard
    world; it is called once for the shared registry and once per
    sandboxed [Check] request carrying defs. *)

val registry : t -> Gp_concepts.Registry.t
val caches : t -> caches

val handle :
  t ->
  caching:bool ->
  budget:Budget.t ->
  Request.t ->
  (Request.payload, Request.error) result * bool
(** [(result, served_from_cache)]. May raise {!Budget.Exhausted} (the
    server maps it to [Over_budget]/[Timeout]); any other escaping
    exception is a dispatcher bug that the server reports as
    [Internal]. *)
