(** Seeded synthetic workloads: a request stream with a configurable
    kind mix and Zipf-like key reuse, so content-keyed caches face a
    realistic hot-set/cold-tail split.

    Deterministic: a fixed (seed, n, mix, zipf, keyspace) tuple replays
    the identical stream; {!fingerprint} digests the canonical request
    renderings so replays are checkable across processes. *)

type mix = (Request.kind * int) list
(** Relative weights per request kind. *)

val default_mix : mix

val parse_mix : string -> (mix, string) result
(** Parse ["check=2,lint=3,prove=1"]; rejects unknown kinds, negative
    weights, and all-zero mixes. Rejects name the offending token and
    its byte offset (["at 8: unknown kind \"bogus\" in mix"]), the same
    positioned-error convention as the wire parsers. *)

val generate :
  ?mix:mix -> ?zipf:float -> ?keyspace:int -> ?errors:float -> seed:int ->
  n:int -> unit -> Request.t list
(** [zipf] is the rank-distribution exponent (higher = hotter hot keys,
    default 1.1); [keyspace] the number of distinct keys per kind
    (default 40). [errors] (default 0.0, the stream is then identical to
    earlier releases) injects that fraction of deterministically failing
    requests: bad [.gpc]/lint/expression sources, unknown
    concept/theory names, and a ~3000-step rewrite that goes
    [Over_budget] under tightened budgets ([max_steps <= ~2500]) — the
    flight-recorder test regime. *)

val fingerprint : Request.t list -> string
(** Digest of the canonical renderings — equal iff the streams are
    request-for-request identical. *)

val pp_mix : Format.formatter -> mix -> unit
