(* Deterministic replay of a flight-recorder dump.

   A dossier carries everything a re-execution needs: the canonical wire
   line, the config line the server ran under, and a digest of the
   canonical response. Replay rebuilds a server from the recorded config
   (fresh caches, fresh registry), re-serves each wire line in recorded
   order under a fresh telemetry sink, and compares response
   fingerprints. The fingerprint covers kind + full payload/error and
   excludes ids, cache provenance and step accounting — so a replay from
   cold caches must match a recording made with warm ones, which is
   exactly the cache-transparency property the service guarantees.

   Divergences are collected, not raised: the caller (gp replay, bench
   s4) decides whether to print span-tree diffs or fail hard. *)

module Recorder = Gp_telemetry.Recorder
module Trace = Gp_telemetry.Trace
module Profile = Gp_telemetry.Profile
module Tel = Gp_telemetry.Tel

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Dossier JSONL decoding                                              *)
(* ------------------------------------------------------------------ *)

let str_field name fields =
  match List.assoc_opt name fields with
  | Some (Wire.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name fields =
  match List.assoc_opt name fields with
  | Some (Wire.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let bool_field name fields =
  match List.assoc_opt name fields with
  | Some (Wire.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected a boolean" name)

(* Json.num renders integral floats without a decimal point (and nan as
   null), so a recorded float can come back as any of the three. *)
let num_field name fields =
  match List.assoc_opt name fields with
  | Some (Wire.Int i) -> Ok (float_of_int i)
  | Some (Wire.Float f) -> Ok f
  | Some Wire.Null -> Ok Float.nan
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let list_field name fields =
  match List.assoc_opt name fields with
  | Some (Wire.Arr items) -> Ok items
  | _ -> Error (Printf.sprintf "field %S: expected an array" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let span_of_json = function
  | Wire.Obj f ->
    let* id = int_field "id" f in
    let* parent =
      match List.assoc_opt "parent" f with
      | Some Wire.Null | None -> Ok None
      | Some (Wire.Int p) -> Ok (Some p)
      | Some _ -> Error "field \"parent\": expected an integer or null"
    in
    let* name = str_field "name" f in
    let* start_ns = num_field "start_ns" f in
    let* dur_ns = num_field "dur_ns" f in
    let* attrs =
      match List.assoc_opt "attrs" f with
      | Some (Wire.Obj kvs) ->
        map_result
          (function
            | k, Wire.Str v -> Ok (k, v)
            | k, _ -> Error (Printf.sprintf "attr %S: expected a string" k))
          kvs
      | None -> Ok []
      | Some _ -> Error "field \"attrs\": expected an object"
    in
    let* gc =
      match List.assoc_opt "gc" f with
      | Some Wire.Null | None -> Ok None
      | Some (Wire.Obj g) ->
        let* alloc = num_field "alloc_bytes" g in
        let* minor = int_field "minor" g in
        let* major = int_field "major" g in
        Ok
          (Some
             { Profile.pc_alloc_bytes = alloc; pc_minor = minor;
               pc_major = major })
      | Some _ -> Error "field \"gc\": expected an object or null"
    in
    Ok
      { Trace.sp_id = id; sp_parent = parent; sp_name = name;
        sp_start_ns = start_ns; sp_dur_ns = dur_ns; sp_attrs = attrs;
        sp_gc = gc }
  | _ -> Error "span: expected an object"

let chain_of_json = function
  | Wire.Obj f ->
    let* cache = str_field "cache" f in
    let* hits = int_field "hits" f in
    let* misses = int_field "misses" f in
    Ok (cache, hits, misses)
  | _ -> Error "cache_chain entry: expected an object"

let delta_of_json = function
  | Wire.Obj f ->
    let* name = str_field "name" f in
    let* delta = num_field "delta" f in
    Ok (name, delta)
  | _ -> Error "metric_deltas entry: expected an object"

let dossier_of_line line =
  match Wire.parse line with
  | exception Wire.Error m -> Error ("bad dossier line: " ^ m)
  | Wire.Obj f ->
    let* do_id = int_field "id" f in
    let* do_kind = str_field "kind" f in
    let* do_wire = str_field "wire" f in
    let* do_generation = int_field "generation" f in
    let* do_config = str_field "config" f in
    let* do_config_fp = str_field "config_fp" f in
    let* do_outcome = str_field "outcome" f in
    let* do_detail = str_field "detail" f in
    let* do_cached = bool_field "cached" f in
    let* do_steps = int_field "steps" f in
    let* do_dur_ns = num_field "dur_ns" f in
    let* do_response_fp = str_field "response_fp" f in
    let* chain = list_field "cache_chain" f in
    let* do_cache_chain = map_result chain_of_json chain in
    let* deltas = list_field "metric_deltas" f in
    let* do_metric_deltas = map_result delta_of_json deltas in
    let* spans = list_field "spans" f in
    let* do_spans = map_result span_of_json spans in
    Ok
      { Recorder.do_id; do_kind; do_wire = Lazy.from_val do_wire;
        do_generation; do_config; do_config_fp; do_outcome; do_detail;
        do_cached; do_steps; do_dur_ns;
        do_response_fp = Lazy.from_val do_response_fp; do_cache_chain;
        do_spans; do_metric_deltas }
  | _ -> Error "bad dossier line: expected a JSON object"

let of_jsonl contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else (
        match dossier_of_line line with
        | Ok d -> go (lineno + 1) (d :: acc) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> of_jsonl contents

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type divergence = {
  dv_dossier : Recorder.dossier;
  dv_response : Request.response;
  dv_response_fp : string;
  dv_spans : Trace.span list;
}

type outcome = {
  rep_config : Server.config;
  rep_total : int;
  rep_matched : int;
  rep_generation_mismatches : int;
  rep_diverged : divergence list;
}

let blank_line_response =
  { Request.rsp_id = 0; rsp_kind = None;
    rsp_result =
      Error { Request.code = Request.Bad_request; detail = "blank wire line" };
    rsp_cached = false; rsp_steps = 0 }

let replay ?config ~declare_standard ds =
  match ds with
  | [] -> Error "empty flight dump: nothing to replay"
  | first :: _ ->
    let* config =
      match config with
      | Some c -> Ok c
      | None -> Server.config_of_line first.Recorder.do_config
    in
    Tel.with_installed ~trace_capacity:65536 (fun _sink ->
        (* the replay server serves the same requests under the same
           budgets; its own flight ring stays off — we are reading a
           recording, not making one *)
        let server =
          Server.create ~config:{ config with flight_capacity = 0 }
            ~declare_standard ()
        in
        let generation =
          Gp_concepts.Registry.generation (Server.registry server)
        in
        let mismatches = ref 0 in
        let matched = ref 0 in
        let diverged = ref [] in
        List.iter
          (fun d ->
            if d.Recorder.do_generation <> generation then incr mismatches;
            let m = Tel.mark () in
            let rsp =
              match Server.serve_line server (Lazy.force d.Recorder.do_wire)
              with
              | Some rsp -> rsp
              | None -> blank_line_response
            in
            let fp = Request.response_fingerprint rsp in
            if String.equal fp (Lazy.force d.Recorder.do_response_fp) then
              incr matched
            else
              diverged :=
                { dv_dossier = d; dv_response = rsp; dv_response_fp = fp;
                  dv_spans = Tel.spans_since m }
                :: !diverged)
          ds;
        Ok
          { rep_config = config;
            rep_total = List.length ds;
            rep_matched = !matched;
            rep_generation_mismatches = !mismatches;
            rep_diverged = List.rev !diverged })

let all_matched o = o.rep_matched = o.rep_total

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_divergence ppf dv =
  let d = dv.dv_dossier in
  Fmt.pf ppf "@[<v>dossier #%d (%s): %s@,wire: %s@,recorded: %s %s  fp %s@,\
              replayed: %a  fp %s"
    d.Recorder.do_id d.Recorder.do_kind
    "response fingerprint mismatch"
    (Lazy.force d.Recorder.do_wire)
    d.Recorder.do_outcome d.Recorder.do_detail
    (Lazy.force d.Recorder.do_response_fp)
    Request.pp_response dv.dv_response dv.dv_response_fp;
  if d.Recorder.do_spans <> [] then
    Fmt.pf ppf "@,recorded span tree:@,%a" Trace.pp_tree d.Recorder.do_spans;
  if dv.dv_spans <> [] then
    Fmt.pf ppf "@,replayed span tree:@,%a" Trace.pp_tree dv.dv_spans;
  Fmt.pf ppf "@]"

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>replayed %d dossier(s): %d matched, %d diverged"
    o.rep_total o.rep_matched
    (List.length o.rep_diverged);
  if o.rep_generation_mismatches > 0 then
    Fmt.pf ppf
      "@,warning: %d dossier(s) recorded under a different registry \
       generation"
      o.rep_generation_mismatches;
  List.iter (fun dv -> Fmt.pf ppf "@,%a" pp_divergence dv) o.rep_diverged;
  Fmt.pf ppf "@]"
