(* Serving observability, as a thin veneer over the shared telemetry
   registry (Gp_telemetry.Metrics).

   The decade-bucket histogram code that used to live here moved into
   Gp_telemetry.Histogram, generalised to configurable log-scale buckets
   with within-bucket interpolated quantiles — the report below prints
   interpolated p50/p90 instead of the old bucket-upper-bound labels.
   Every server metric is an ordinary registry family, so the same data
   renders three ways: the human text [report], the machine
   [report_json], and the Prometheus exposition [to_prometheus]. *)

module M = Gp_telemetry.Metrics
module Histogram = Gp_telemetry.Histogram

let latency_family = "gp_request_latency_ns"

(* Per-kind resolved series handles. [M.inc]/[M.observe] re-resolve the
   series on every call (label sort + rendered-key allocation); the
   per-request path instead resolves each kind's four series once and
   bumps the cells directly — zero-allocation steady state. *)
type kind_handles = {
  kh_total : float ref;
  kh_ok : float ref;
  kh_cached : float ref;
  kh_latency : Histogram.t;
}

type t = {
  reg : M.t;
  mutable kinds : string list; (* first-observation order, for the report *)
  mutable handles : (string * kind_handles) list; (* same order *)
}

let create () =
  let reg = M.create () in
  (* service latencies: 100ns .. 10s at 5 buckets/decade (ratio ~1.58),
     same span the old decade table covered but 10x the resolution *)
  M.set_histogram_factory reg (fun _ ->
      Histogram.create ~lo:100.0 ~hi:1e10 ~buckets_per_decade:5 ());
  M.declare reg ~kind:M.Counter ~name:"gp_requests_total"
    ~help:"Requests handled, by kind.";
  M.declare reg ~kind:M.Counter ~name:"gp_requests_ok_total"
    ~help:"Requests answered without error, by kind.";
  M.declare reg ~kind:M.Counter ~name:"gp_requests_cached_total"
    ~help:"Requests served from a response cache, by kind.";
  M.declare reg ~kind:M.Counter ~name:"gp_request_errors_total"
    ~help:"Request errors, by kind and error code.";
  M.declare reg ~kind:M.Histo ~name:latency_family
    ~help:"Request service time in nanoseconds, by kind.";
  { reg; kinds = []; handles = [] }

let registry t = t.reg

let handles_for t kind =
  match List.assoc_opt kind t.handles with
  | Some h -> h
  | None ->
    t.kinds <- t.kinds @ [ kind ];
    let labels = [ ("kind", kind) ] in
    let h =
      { kh_total = M.counter_handle t.reg ~labels "gp_requests_total";
        kh_ok = M.counter_handle t.reg ~labels "gp_requests_ok_total";
        kh_cached = M.counter_handle t.reg ~labels "gp_requests_cached_total";
        kh_latency = M.histogram_handle t.reg ~labels latency_family }
    in
    t.handles <- t.handles @ [ (kind, h) ];
    h

let observe t ~kind ~ok ~error_code ~cached ~ns =
  let h = handles_for t kind in
  h.kh_total := !(h.kh_total) +. 1.0;
  if ok then h.kh_ok := !(h.kh_ok) +. 1.0;
  if cached then h.kh_cached := !(h.kh_cached) +. 1.0;
  (match error_code with
  | None -> ()
  | Some code ->
    (* error series fan out by (kind, code); errors are off the hot
       path, so resolving per call is fine *)
    M.inc t.reg
      ~labels:[ ("kind", kind); ("code", code) ]
      "gp_request_errors_total");
  Histogram.observe h.kh_latency ns

let requests t = int_of_float (M.total t.reg "gp_requests_total")
let errors t = int_of_float (M.total t.reg "gp_request_errors_total")

let pp_ns ppf ns =
  if Float.is_nan ns || ns = infinity then Fmt.string ppf "-"
  else if ns < 1e3 then Fmt.pf ppf "%.0fns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2fms" (ns /. 1e6)
  else Fmt.pf ppf "%.2fs" (ns /. 1e9)

let kind_value t ?(extra = []) name kind =
  int_of_float (M.value t.reg ~labels:(("kind", kind) :: extra) name)

(* errors for one kind, summed across codes *)
let kind_errors t kind =
  List.fold_left
    (fun acc (labels, v) ->
      if List.assoc_opt "kind" labels = Some kind then acc + int_of_float v
      else acc)
    0
    (M.counter_series t.reg "gp_request_errors_total")

let errors_by_code t =
  List.fold_left
    (fun acc (labels, v) ->
      match List.assoc_opt "code" labels with
      | None -> acc
      | Some code ->
        let n = try List.assoc code acc with Not_found -> 0 in
        (code, n + int_of_float v) :: List.remove_assoc code acc)
    []
    (M.counter_series t.reg "gp_request_errors_total")

let report ?(cache_stats = []) t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "requests by kind@.";
  Fmt.pf ppf "  %-9s %8s %8s %8s %8s %9s %9s %9s %9s@." "kind" "count" "ok"
    "err" "cached" "mean" "p50" "p90" "max";
  List.iter
    (fun kind ->
      let labels = [ ("kind", kind) ] in
      let h = M.find_histogram t.reg ~labels latency_family in
      let stat f = match h with None -> nan | Some h -> f h in
      Fmt.pf ppf "  %-9s %8d %8d %8d %8d %9s %9s %9s %9s@." kind
        (kind_value t "gp_requests_total" kind)
        (kind_value t "gp_requests_ok_total" kind)
        (kind_errors t kind)
        (kind_value t "gp_requests_cached_total" kind)
        (Fmt.str "%a" pp_ns (stat Histogram.mean))
        (Fmt.str "%a" pp_ns (stat (fun h -> Histogram.quantile h 0.50)))
        (Fmt.str "%a" pp_ns (stat (fun h -> Histogram.quantile h 0.90)))
        (Fmt.str "%a" pp_ns (stat Histogram.max_value)))
    t.kinds;
  let all_errors = errors_by_code t in
  if all_errors <> [] then begin
    Fmt.pf ppf "@.errors by code@.";
    List.iter
      (fun (code, n) -> Fmt.pf ppf "  %-15s %d@." code n)
      (List.sort compare all_errors)
  end;
  if cache_stats <> [] then begin
    Fmt.pf ppf "@.caches (hit ratio over lookups)@.";
    List.iter (fun st -> Fmt.pf ppf "  %a@." Lru.pp_stats st) cache_stats
  end;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let report_json ?(cache_stats = []) ?gc t =
  let module J = Gp_telemetry.Json in
  let cache_json (st : Lru.stats) =
    Printf.sprintf
      "{\"name\":%s,\"capacity\":%d,\"size\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d}"
      (J.str st.Lru.st_name) st.Lru.st_capacity st.Lru.st_size st.Lru.st_hits
      st.Lru.st_misses st.Lru.st_evictions
  in
  Printf.sprintf
    "{\"requests\":%d,\"errors\":%d,%s\"caches\":[%s],\"registry\":%s}"
    (requests t) (errors t)
    (match gc with None -> "" | Some g -> "\"gc\":" ^ g ^ ",")
    (String.concat "," (List.map cache_json cache_stats))
    (M.to_json t.reg)

let to_prometheus t = M.to_prometheus t.reg
