(* Per-request execution budgets: an abstract step allowance plus a
   wall-clock deadline.

   The underlying libraries know nothing about budgets, so the dispatcher
   charges steps at stage boundaries (per parsed declaration, per lint
   statement, per theorem, per closure obligation...). Coarse, but it makes
   over-budget behaviour deterministic — the same request against the same
   budget always trips at the same charge — which the robustness suite
   relies on. Deadlines are checked on every charge through an injectable
   clock, so tests drive timeouts with a fake clock instead of sleeping. *)

type why = Steps | Deadline

exception Exhausted of why

type t = {
  max_steps : int;
  mutable used : int;
  deadline : float option; (* absolute, in [now]'s timescale *)
  now : unit -> float;
}

let create ?(max_steps = max_int) ?deadline ~now () =
  if max_steps < 0 then invalid_arg "Budget.create: max_steps < 0";
  { max_steps; used = 0; deadline; now }

let used t = t.used
let remaining t = t.max_steps - t.used

let check_deadline t =
  match t.deadline with
  | Some d when t.now () > d -> raise (Exhausted Deadline)
  | _ -> ()

let spend t n =
  check_deadline t;
  t.used <- t.used + n;
  if t.used > t.max_steps then raise (Exhausted Steps)

let why_name = function Steps -> "steps" | Deadline -> "deadline"
