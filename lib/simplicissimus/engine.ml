(* The rewrite engine: bottom-up normalisation to a fixpoint, applying
   concept-guarded rules wherever their guards hold.

   "Since concept analysis is a necessary first step for use of a new data
   type with a generic algorithm, optimization via concept-based rewrite
   rules comes essentially for free": here the guard check is literally a
   lookup of the modeling relation the instance table already records.

   The engine logs every rule application (rule name, carrier, before,
   after) so the Fig. 5 instance table can be *regenerated mechanically*
   from the rules — bench f5 does exactly that. *)

module Tel = Gp_telemetry.Tel

type step = {
  st_rule : string;
  st_carrier : string * string; (* (type, op) the guard was checked on *)
  st_before : Expr.t;
  st_after : Expr.t;
}

type result = {
  input : Expr.t;
  output : Expr.t;
  steps : step list;
  ops_before : int;
  ops_after : int;
}

(* Candidate carriers for matching a rule at [node]: the node's own
   (type, op), plus any carrier whose *inverse* op is the node's op (so a
   root pattern like inv(inv x) finds its owning carrier). Both come
   from instance-table indexes — no entry-list scan per node. *)
let carriers insts (node : Expr.t) =
  match node with
  | Expr.Op (o, t, _) -> (t, o) :: Instances.inverse_carriers insts ~ty:t ~op:o
  | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> []

(* Per-rewrite counters the core maintains unconditionally (two int
   stores per guard probe — noise); the instrumented wrapper flushes
   them to the telemetry registry when a sink is installed. *)
type core_stats = { mutable guard_probes : int; mutable guard_hits : int }

(* Try to apply one rule at [node] for carrier (ty, op); the concept guard
   is checked first (user rules are guarded by their library type
   instead). [guard_memo] caches the instance-table part of the guard —
   keyed (ty, op, required level, ring?) — across one whole rewrite, so
   repeated guard checks on the same carrier cost one hash probe. *)
let try_rule insts ~only_certified ~guard_memo ~stats (r : Rules.t) ~ty ~op
    node =
  let guard_ok =
    match r.Rules.user_type with
    | Some ut ->
      (* library-specific rule: fires on its own type/op only *)
      String.equal ut ty
      && (match r.Rules.user_op with
         | Some uo -> String.equal uo op
         | None -> true)
    | None ->
      let key =
        (ty, op, Instances.level_rank r.Rules.guard, r.Rules.requires_ring)
      in
      stats.guard_probes <- stats.guard_probes + 1;
      let instance_ok =
        match Hashtbl.find_opt guard_memo key with
        | Some b ->
          stats.guard_hits <- stats.guard_hits + 1;
          b
        | None ->
          let b =
            Instances.models insts ~ty ~op ~required:r.Rules.guard
            && ((not r.Rules.requires_ring)
               || Instances.ring_for insts ~ty ~op <> None)
          in
          Hashtbl.add guard_memo key b;
          b
      in
      instance_ok && ((not only_certified) || !(r.Rules.certified))
  in
  if not guard_ok then None
  else
    match Rules.match_pattern insts ~ty ~op r.Rules.lhs node with
    | Some bindings ->
      Some (Rules.instantiate insts ~ty ~op bindings r.Rules.rhs)
    | None -> None

let max_steps = 10_000

exception
  Did_not_terminate of {
    dnt_input : Expr.t;
    dnt_partial : Expr.t;
    dnt_steps : step list;
  }

(* The per-rewrite rule index: rules bucketed by what their LHS root can
   match (Rules.head), each paired with its position in the caller's
   list so the pruned iteration preserves the original rule order — and
   with it which rule a trace records when several could fire. *)
type rule_index = {
  rx_exact : (string, (int * Rules.t) list) Hashtbl.t;
      (* fixed-symbol rules, by symbol *)
  rx_rest : (int * Rules.t) list;
      (* carrier-op, carrier-inverse and wildcard rules *)
  rx_cands : (string, (int * Rules.t) list) Hashtbl.t;
      (* memo: node root symbol -> merged candidate list *)
}

let index_rules rules =
  let rx_exact = Hashtbl.create 16 in
  let rest = ref [] in
  List.iteri
    (fun i r ->
      match Rules.head r with
      | Rules.Head_exact o ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt rx_exact o) in
        Hashtbl.replace rx_exact o (prev @ [ (i, r) ])
      | Rules.Head_carrier_op | Rules.Head_carrier_inverse | Rules.Head_any ->
        rest := (i, r) :: !rest)
    rules;
  { rx_exact; rx_rest = List.rev !rest; rx_cands = Hashtbl.create 16 }

(* Rules that can possibly match a node whose root symbol is [o], in
   original list order: the fixed-symbol bucket for [o] merged with
   everything symbol-free. *)
let candidates rx o =
  match Hashtbl.find_opt rx.rx_cands o with
  | Some l -> l
  | None ->
    let exact = Option.value ~default:[] (Hashtbl.find_opt rx.rx_exact o) in
    let merged =
      List.merge (fun (i, _) (j, _) -> Int.compare i j) exact rx.rx_rest
    in
    Hashtbl.replace rx.rx_cands o merged;
    merged

let rewrite_core ?(only_certified = false) ~rules ~insts expr =
  let steps = ref [] in
  let budget = ref max_steps in
  let exhausted = ref false in
  let rx = index_rules rules in
  let guard_memo = Hashtbl.create 64 in
  let stats = { guard_probes = 0; guard_hits = 0 } in
  (* apply rules at the root of [node] until none fires *)
  let rec at_root node =
    match node with
    | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> node
    | Expr.Op _ when !exhausted -> node
    | Expr.Op (o, _, _) -> (
      let cs = carriers insts node in
      let fired =
        List.find_map
          (fun (_, r) ->
            let cs =
              match Rules.head r with
              | Rules.Head_carrier_op ->
                (* a P_op root only matches when the carrier op IS the
                   node symbol — i.e. the own-carrier at the list head *)
                (match cs with own :: _ -> [ own ] | [] -> [])
              | Rules.Head_exact _ | Rules.Head_carrier_inverse
              | Rules.Head_any ->
                cs
            in
            List.find_map
              (fun (ty, op) ->
                match
                  try_rule insts ~only_certified ~guard_memo ~stats r ~ty ~op
                    node
                with
                | Some after ->
                  Some
                    {
                      st_rule = r.Rules.rule_name;
                      st_carrier = (ty, op);
                      st_before = node;
                      st_after = after;
                    }
                | None -> None)
              cs)
          (candidates rx o)
      in
      match fired with
      | Some step ->
        decr budget;
        if !budget <= 0 then begin
          (* budget exhausted: drop the offending step (as the seed
             did), stop firing rules, and let [normalize] finish
             rebuilding so the exception can carry the partially
             normalized term and every step taken so far *)
          exhausted := true;
          node
        end
        else begin
          steps := step :: !steps;
          (* the replacement may expose new redexes below the root *)
          normalize step.st_after
        end
      | None -> node)
  and normalize node =
    match node with
    | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> at_root node
    | Expr.Op (o, t, args) -> at_root (Expr.Op (o, t, List.map normalize args))
  in
  let output = normalize expr in
  if !exhausted then
    raise
      (Did_not_terminate
         { dnt_input = expr; dnt_partial = output; dnt_steps = List.rev !steps });
  ( {
      input = expr;
      output;
      steps = List.rev !steps;
      ops_before = Expr.op_count expr;
      ops_after = Expr.op_count output;
    },
    stats )

let rewrite_uninstrumented ?only_certified ~rules ~insts expr =
  fst (rewrite_core ?only_certified ~rules ~insts expr)

let head_symbol (e : Expr.t) =
  match e with
  | Expr.Op (o, _, _) -> o
  | Expr.Var _ -> "var"
  | Expr.Lit _ -> "lit"
  | Expr.Ident _ -> "ident"

(* The public entry point. Disabled, it is one flag check and a closure
   away from [rewrite_uninstrumented] (bench s3 measures exactly that
   gap); enabled, it opens a span and flushes per-rewrite counters —
   including rules fired per head symbol, recovered from the step trace
   after the core returns so the hot loop never touches telemetry. *)
let rewrite ?only_certified ~rules ~insts expr =
  if not (Tel.is_enabled ()) then
    fst (rewrite_core ?only_certified ~rules ~insts expr)
  else
    Tel.with_span ~name:"simplicissimus.rewrite" (fun () ->
        let r, stats = rewrite_core ?only_certified ~rules ~insts expr in
        Tel.count "gp_engine_rewrites_total" 1;
        Tel.count "gp_engine_steps_total" (List.length r.steps);
        Tel.count "gp_engine_guard_probes_total" stats.guard_probes;
        Tel.count "gp_engine_guard_memo_hits_total" stats.guard_hits;
        List.iter
          (fun s ->
            Tel.count
              ~labels:[ ("head", head_symbol s.st_before) ]
              "gp_engine_rules_fired_total" 1)
          r.steps;
        Tel.attr "steps" (string_of_int (List.length r.steps));
        Tel.attr "ops_before" (string_of_int r.ops_before);
        Tel.attr "ops_after" (string_of_int r.ops_after);
        r)

(* ------------------------------------------------------------------ *)
(* The seed linear-scan engine, retained as the equivalence oracle      *)
(* ------------------------------------------------------------------ *)

(* Everything below reproduces the pre-index engine: candidate carriers
   by scanning the whole entry list at every node, every rule tried at
   every node, no guard memo. The qcheck equivalence suite checks
   [rewrite] against it on random worlds; bench s2 times both. *)

let carriers_reference insts (node : Expr.t) =
  match node with
  | Expr.Op (o, t, _) ->
    let own = [ (t, o) ] in
    let via_inverse =
      List.filter_map
        (fun (e : Instances.entry) ->
          if
            String.equal e.Instances.e_type t
            && e.Instances.e_inverse = Some o
          then Some (t, e.Instances.e_op)
          else None)
        (Instances.entries insts)
    in
    own @ via_inverse
  | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> []

let try_rule_reference insts ~only_certified (r : Rules.t) ~ty ~op node =
  let guard_ok =
    match r.Rules.user_type with
    | Some ut ->
      String.equal ut ty
      && (match r.Rules.user_op with
         | Some uo -> String.equal uo op
         | None -> true)
    | None ->
      Instances.models insts ~ty ~op ~required:r.Rules.guard
      && ((not r.Rules.requires_ring)
         || Instances.ring_for insts ~ty ~op <> None)
      && ((not only_certified) || !(r.Rules.certified))
  in
  if not guard_ok then None
  else
    match Rules.match_pattern insts ~ty ~op r.Rules.lhs node with
    | Some bindings ->
      Some (Rules.instantiate insts ~ty ~op bindings r.Rules.rhs)
    | None -> None

let rewrite_reference ?(only_certified = false) ~rules ~insts expr =
  let steps = ref [] in
  let budget = ref max_steps in
  let exhausted = ref false in
  let rec at_root node =
    if !exhausted then node
    else
      let fired =
        List.find_map
          (fun r ->
            List.find_map
              (fun (ty, op) ->
                match try_rule_reference insts ~only_certified r ~ty ~op node with
                | Some after ->
                  Some
                    {
                      st_rule = r.Rules.rule_name;
                      st_carrier = (ty, op);
                      st_before = node;
                      st_after = after;
                    }
                | None -> None)
              (carriers_reference insts node))
          rules
      in
      match fired with
      | Some step ->
        decr budget;
        if !budget <= 0 then begin
          exhausted := true;
          node
        end
        else begin
          steps := step :: !steps;
          normalize step.st_after
        end
      | None -> node
  and normalize node =
    match node with
    | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> at_root node
    | Expr.Op (o, t, args) -> at_root (Expr.Op (o, t, List.map normalize args))
  in
  let output = normalize expr in
  if !exhausted then
    raise
      (Did_not_terminate
         { dnt_input = expr; dnt_partial = output; dnt_steps = List.rev !steps });
  {
    input = expr;
    output;
    steps = List.rev !steps;
    ops_before = Expr.op_count expr;
    ops_after = Expr.op_count output;
  }

let pp_step ppf s =
  Fmt.pf ppf "%a  --[%s @@ (%s,%s)]-->  %a" Expr.pp s.st_before s.st_rule
    (fst s.st_carrier) (snd s.st_carrier) Expr.pp s.st_after

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,  ==>  %a   (%d ops -> %d ops, %d steps)@]" Expr.pp
    r.input Expr.pp r.output r.ops_before r.ops_after (List.length r.steps)
