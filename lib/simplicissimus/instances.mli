(** The instance table: which (carrier type, operation symbol) pairs
    model which algebraic concept — the data behind the "Requirements"
    column of Fig. 5. Rewrite-rule guards query [models]; identities and
    inverse operations come from here too. Each entry records whether
    its axioms are exactly proved or merely asserted (floats). *)

type level = Semigroup | Monoid | Group | Abelian_group

val level_rank : level -> int
val level_at_least : required:level -> level -> bool
val level_name : level -> string

type entry = {
  e_type : string;
  e_op : string;
  e_level : level;
  e_identity : Expr.value option;  (** concrete identity, if fixed *)
  e_inverse : string option;  (** inverse op symbol, Group and up *)
  e_axioms_proved : bool;
  e_mapping : Gp_athena.Theory.mapping option;
}

(** A ring ties two carriers on one element type together: (ty, add) an
    abelian group and (ty, mul) a monoid, with annihilation by the
    additive zero available as a checked theorem. *)
type ring_entry = {
  rg_type : string;
  rg_add : string;
  rg_mul : string;
  rg_zero : Expr.value option;
  rg_mapping : Gp_athena.Theory.ring_mapping option;
}

type t

val create : unit -> t

val add :
  t ->
  ?identity:Expr.value ->
  ?inverse:string ->
  ?mapping:Gp_athena.Theory.mapping ->
  ?proved:bool ->
  ty:string ->
  op:string ->
  level ->
  unit

val add_ring :
  t ->
  ?zero:Expr.value ->
  ?mapping:Gp_athena.Theory.ring_mapping ->
  ty:string ->
  add_op:string ->
  mul_op:string ->
  unit ->
  unit

val find : t -> ty:string -> op:string -> entry option
(** Indexed (ty, op) lookup; when a carrier was declared more than once,
    the most recent declaration wins. *)

val ring_for : t -> ty:string -> op:string -> ring_entry option
(** The ring whose multiplication is (ty, op). *)

val inverse_carriers : t -> ty:string -> op:string -> (string * string) list
(** Carriers [(ty, op')] whose declared inverse operation is [op] — the
    candidates {!Gp_simplicissimus.Engine.carriers} adds at a node whose
    root symbol is an inverse (so [inv (inv x)] finds its owner without
    scanning the entry list). Insertion order. *)

val is_ring_zero : t -> ty:string -> op:string -> Expr.t -> bool
val ring_zero_expr : t -> ty:string -> op:string -> Expr.t

val models : t -> ty:string -> op:string -> required:level -> bool
(** The question every rewrite-rule guard asks. *)

val is_identity : t -> ty:string -> op:string -> Expr.t -> bool
(** Symbolic identities match by construction; literals by value. *)

val identity_expr : t -> ty:string -> op:string -> Expr.t
(** Raises [Invalid_argument] on an unknown carrier. *)

val inverse_op : t -> ty:string -> op:string -> string option

val standard : unit -> t
(** The ten Fig. 5 instances plus exact rational and boolean/bitwise
    companions. *)

val entries : t -> entry list
(** All entries in insertion (declaration) order. The returned list is
    memoised: repeated calls between mutations return the {e same} list
    (physical equality), so callers may iterate it freely without
    paying a fresh allocation per call. *)

val rings : t -> ring_entry list
(** All ring structures in insertion order (the linear-scan reference
    oracles in the test suite rebuild {!ring_for} from this). *)
