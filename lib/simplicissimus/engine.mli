(** The rewrite engine: bottom-up normalisation to a fixpoint.

    Rules fire wherever their concept guards hold against the instance
    table — "optimization via concept-based rewrite rules comes
    essentially for free" once the modeling relation is recorded. Every
    application is logged, so the Fig. 5 instance table regenerates
    mechanically from the rules (bench F5). *)

type step = {
  st_rule : string;
  st_carrier : string * string;  (** (type, op) the guard was checked on *)
  st_before : Expr.t;
  st_after : Expr.t;
}

type result = {
  input : Expr.t;
  output : Expr.t;
  steps : step list;
  ops_before : int;
  ops_after : int;
}

val carriers : Instances.t -> Expr.t -> (string * string) list
(** Candidate carriers at a node: its own (type, op) plus any carrier
    whose inverse operation is the node's op (so inv(inv x) finds its
    owner). *)

exception
  Did_not_terminate of {
    dnt_input : Expr.t;  (** the expression rewriting started from *)
    dnt_partial : Expr.t;
        (** the partially-normalised term at the moment the budget ran
            out — rule firing stops but reconstruction completes, so
            this is a well-formed expression *)
    dnt_steps : step list;
        (** every step taken before exhaustion, in order (the step that
            tripped the budget is not included) *)
  }
(** Raised if rewriting exceeds the internal step budget (a cyclic user
    rule set). The payload reports how far rewriting got, so a caller
    can diagnose the looping rule from the step trace. *)

val rewrite :
  ?only_certified:bool ->
  rules:Rules.t list ->
  insts:Instances.t ->
  Expr.t ->
  result
(** Normalise to a fixpoint. With [only_certified], concept rules whose
    backing theorem has not been proof-checked are skipped (user rules
    are library facts and exempt).

    Internally the rule list is indexed by what each rule's LHS root can
    match ({!Rules.head}), so a node only ever tries rules that could
    possibly fire at it; guard checks are memoised per (carrier, level)
    across the whole call. Firing order is identical to
    {!rewrite_reference}.

    When a telemetry sink is installed ([Gp_telemetry.Tel.install]) each
    call opens a [simplicissimus.rewrite] span and emits step, guard-memo
    and rules-fired-per-head-symbol counters; with no sink installed the
    instrumentation is a single flag check (bench s3 measures the gap
    against {!rewrite_uninstrumented}). The result is identical either
    way. *)

val rewrite_uninstrumented :
  ?only_certified:bool ->
  rules:Rules.t list ->
  insts:Instances.t ->
  Expr.t ->
  result
(** The bare indexed engine with no telemetry wrapper at all — the
    honest baseline bench s3 compares {!rewrite} against. Semantically
    identical to {!rewrite}. *)

val rewrite_reference :
  ?only_certified:bool ->
  rules:Rules.t list ->
  insts:Instances.t ->
  Expr.t ->
  result
(** The seed linear-scan engine, retained as an equivalence oracle: every
    rule tried at every node, candidate carriers recomputed by scanning
    the whole entry list per rule, no guard memo. Semantically identical
    to {!rewrite} (the qcheck suite checks this on random worlds); bench
    s2 measures the gap. *)

val pp_step : Format.formatter -> step -> unit
val pp_result : Format.formatter -> result -> unit
