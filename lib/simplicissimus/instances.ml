(* The instance table: which (carrier type, operation symbol) pairs model
   which algebraic concept, with their identity elements and inverse
   operations — the data behind the "Requirements" column of Fig. 5.

   This mirrors the carrier declarations of {!Gp_algebra.Decls} but is keyed
   the way the rewriter needs: by surface (type, op). Each entry also cross-
   registers a model in a gp_concepts registry so the engine's guards are
   genuine concept checks, and records how its axioms are discharged
   (proved via gp_athena, or merely asserted — floats!). *)

type level = Semigroup | Monoid | Group | Abelian_group

let level_rank = function
  | Semigroup -> 0
  | Monoid -> 1
  | Group -> 2
  | Abelian_group -> 3

let level_at_least ~required l = level_rank l >= level_rank required

let level_name = function
  | Semigroup -> "Semigroup"
  | Monoid -> "Monoid"
  | Group -> "Group"
  | Abelian_group -> "AbelianGroup"

type entry = {
  e_type : string; (* carrier element type, e.g. "int" *)
  e_op : string; (* operation symbol, e.g. "+" *)
  e_level : level;
  e_identity : Expr.value option; (* concrete identity literal, if fixed *)
  e_inverse : string option; (* inverse op symbol, for Group and up *)
  e_axioms_proved : bool; (* exact instance (true) vs asserted (float) *)
  e_mapping : Gp_athena.Theory.mapping option; (* athena operator mapping *)
}

(* A ring structure ties two carriers on the same element type together:
   (ty, add) an abelian group and (ty, mul) a monoid, with multiplication
   annihilated by the additive zero (a theorem, see
   Gp_athena.Theorems.ring_mul_zero). *)
type ring_entry = {
  rg_type : string;
  rg_add : string; (* additive op symbol *)
  rg_mul : string; (* multiplicative op symbol *)
  rg_zero : Expr.value option; (* the additive zero, if concrete *)
  rg_mapping : Gp_athena.Theory.ring_mapping option;
}

(* Lookups are all keyed by (type, op) pairs, so the table maintains
   hashtable indexes eagerly alongside the entry lists (every mutation
   goes through [add] / [add_ring]; there is no external mutation path).
   [Hashtbl.replace] gives the same most-recent-declaration-wins
   semantics as the head-first list scans it replaces. *)
type t = {
  mutable entries : entry list; (* most-recent-first *)
  mutable rings : ring_entry list; (* most-recent-first *)
  mutable entries_cache : entry list option;
      (* memoised insertion-order view served by [entries] *)
  by_key : (string * string, entry) Hashtbl.t; (* (ty, op) -> entry *)
  by_inverse : (string * string, (string * string) list) Hashtbl.t;
      (* (ty, inverse op) -> owning carriers (ty, op), insertion order *)
  ring_by_mul : (string * string, ring_entry) Hashtbl.t;
      (* (ty, multiplicative op) -> ring *)
}

let create () =
  { entries = []; rings = []; entries_cache = None;
    by_key = Hashtbl.create 32; by_inverse = Hashtbl.create 16;
    ring_by_mul = Hashtbl.create 8 }

let add t ?identity ?inverse ?mapping ?(proved = true) ~ty ~op level =
  let e =
    {
      e_type = ty;
      e_op = op;
      e_level = level;
      e_identity = identity;
      e_inverse = inverse;
      e_axioms_proved = proved;
      e_mapping = mapping;
    }
  in
  t.entries <- e :: t.entries;
  t.entries_cache <- None;
  Hashtbl.replace t.by_key (ty, op) e;
  match inverse with
  | None -> ()
  | Some inv ->
    let key = (ty, inv) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_inverse key) in
    Hashtbl.replace t.by_inverse key (prev @ [ (ty, op) ])

let add_ring t ?zero ?mapping ~ty ~add_op ~mul_op () =
  let r =
    { rg_type = ty; rg_add = add_op; rg_mul = mul_op; rg_zero = zero;
      rg_mapping = mapping }
  in
  t.rings <- r :: t.rings;
  Hashtbl.replace t.ring_by_mul (ty, mul_op) r

let find t ~ty ~op = Hashtbl.find_opt t.by_key (ty, op)

(* The ring whose *multiplicative* operation is (ty, op), if any — what
   the annihilation rules' guard asks. *)
let ring_for t ~ty ~op = Hashtbl.find_opt t.ring_by_mul (ty, op)

(* Carriers whose declared inverse operation is (ty, op) — what
   {!Gp_simplicissimus.Engine.carriers} asks at every Op node; the index
   replaces its scan (and re-reversal) of the whole entry list. *)
let inverse_carriers t ~ty ~op =
  Option.value ~default:[] (Hashtbl.find_opt t.by_inverse (ty, op))

(* Is [expr] the additive zero of the ring whose multiplication is
   (ty, op)? *)
let is_ring_zero t ~ty ~op (expr : Expr.t) =
  match ring_for t ~ty ~op with
  | None -> false
  | Some r -> (
    match expr with
    | Expr.Ident (t', o') -> String.equal t' ty && String.equal o' r.rg_add
    | Expr.Lit v -> (
      match r.rg_zero with Some z -> Expr.value_equal v z | None -> false)
    | Expr.Var _ | Expr.Op _ -> false)

let ring_zero_expr t ~ty ~op =
  match ring_for t ~ty ~op with
  | Some { rg_zero = Some z; _ } -> Expr.Lit z
  | Some { rg_add; _ } -> Expr.Ident (ty, rg_add)
  | None -> invalid_arg (Printf.sprintf "no ring with multiplication (%s, %s)" ty op)

(* Does (ty, op) model [concept]? The question every rewrite-rule guard
   asks. *)
let models t ~ty ~op ~(required : level) =
  match find t ~ty ~op with
  | Some e -> level_at_least ~required e.e_level
  | None -> false

(* Is [expr] the identity element of (ty, op)? Symbolic identities match by
   construction; literals match by value. *)
let is_identity t ~ty ~op (expr : Expr.t) =
  match expr with
  | Expr.Ident (t', o') -> String.equal t' ty && String.equal o' op
  | Expr.Lit v -> (
    match find t ~ty ~op with
    | Some { e_identity = Some id; _ } -> Expr.value_equal v id
    | Some { e_identity = None; _ } | None -> false)
  | Expr.Var _ | Expr.Op _ -> false

let identity_expr t ~ty ~op =
  match find t ~ty ~op with
  | Some { e_identity = Some v; _ } -> Expr.Lit v
  | Some { e_identity = None; _ } -> Expr.Ident (ty, op)
  | None -> invalid_arg (Printf.sprintf "no instance for (%s, %s)" ty op)

let inverse_op t ~ty ~op =
  match find t ~ty ~op with
  | Some { e_inverse; _ } -> e_inverse
  | None -> None

(* The standard table: the ten Fig. 5 instances plus the exact rational and
   bitwise/boolean companions. *)
let standard () =
  let t = create () in
  let open Expr in
  let open Gp_athena.Theory in
  add t ~ty:"int" ~op:"+" Abelian_group ~identity:(VInt 0) ~inverse:"neg"
    ~mapping:int_add;
  add t ~ty:"int" ~op:"*" Monoid ~identity:(VInt 1) ~mapping:int_mul;
  add t ~ty:"int" ~op:"&" Monoid ~identity:(VInt (-1)) ~mapping:int_band;
  add t ~ty:"int" ~op:"|" Monoid ~identity:(VInt 0);
  add t ~ty:"bool" ~op:"&&" Monoid ~identity:(VBool true) ~mapping:bool_and;
  add t ~ty:"bool" ~op:"||" Monoid ~identity:(VBool false);
  add t ~ty:"string" ~op:"^" Monoid ~identity:(VString "")
    ~mapping:string_concat;
  (* floats: the axioms hold only approximately — asserted, not proved *)
  add t ~ty:"float" ~op:"+" Abelian_group ~identity:(VFloat 0.0)
    ~inverse:"neg" ~proved:false;
  add t ~ty:"float" ~op:"*" Group ~identity:(VFloat 1.0) ~inverse:"inv"
    ~proved:false ~mapping:float_mul;
  add t ~ty:"rational" ~op:"+" Abelian_group
    ~identity:(VRat Gp_algebra.Rational.zero) ~inverse:"neg";
  add t ~ty:"rational" ~op:"*" Group
    ~identity:(VRat Gp_algebra.Rational.one) ~inverse:"inv"
    ~mapping:rational_mul;
  (* matrix identity is dimension-dependent: symbolic *)
  add t ~ty:"matrix" ~op:"." Monoid ~mapping:matrix_mul;
  add t ~ty:"invertible_matrix" ~op:"." Group ~inverse:"inv";
  (* ring structures: the annihilation rules' guards *)
  add_ring t ~ty:"int" ~add_op:"+" ~mul_op:"*" ~zero:(VInt 0)
    ~mapping:{ r_name = "int"; add = int_add; mul = int_mul }
    ();
  add_ring t ~ty:"float" ~add_op:"+" ~mul_op:"*" ~zero:(VFloat 0.0) ();
  add_ring t ~ty:"rational" ~add_op:"+" ~mul_op:"*"
    ~zero:(VRat Gp_algebra.Rational.zero) ();
  t

let entries t =
  match t.entries_cache with
  | Some l -> l
  | None ->
    let l = List.rev t.entries in
    t.entries_cache <- Some l;
    l

let rings t = List.rev t.rings
