(** The tracing artifact of one cluster run: per-node span lanes plus
    the run shape (replica count, workload size, seed), assembled into
    cross-node journeys, dumped/loaded as deterministic JSONL, exported
    to Chrome with one [pid] lane per node, and validated.

    Trace ids below the workload size [n] are request journeys; ids at
    and above [n] are auxiliary traces (election rounds, liveness
    probes). Completed requests must assemble into well-formed trees;
    aux traces may legitimately carry orphaned spans when the message
    that would have closed a parent was dropped — those are surfaced,
    never failed and never attached to a root. *)

type t = {
  ts_replicas : int;
  ts_n : int;  (** workload size: trace ids below this are requests *)
  ts_seed : int;
  ts_lanes : (int * Gp_telemetry.Trace.span list) list;  (** node order *)
}

val of_result : Gp_cluster.Cluster.result -> t
(** Wrap a traced run's [r_traces] (empty lanes when the run was not
    traced). *)

val journeys : t -> Gp_telemetry.Journey.journey list
(** Assemble every trace, sorted by trace id. *)

val request_journey : t -> int -> Gp_telemetry.Journey.journey option
(** The journey of one workload request, by rid. *)

val is_request : t -> int -> bool
(** Is this trace id a workload request (vs an aux trace)? *)

(** {2 Dump / load} *)

val dump : t -> string
(** JSONL: a header line ([gp_trace] version, shape, seed, span count)
    then one line per span in node-lane order. The causal context rides
    as a ["trace/span"] [ctx] field rendered by
    {!Gp_telemetry.Context.render_into}; times are simulated units with
    a fixed six-decimal rendering. Deterministic — two same-seed runs
    dump identical bytes. *)

val load : string -> (t, string) result
(** Inverse of {!dump}. [Error] describes the first malformed line. *)

(** {2 Chrome export} *)

val node_name : t -> int -> string
(** ["router"] for node 0, ["replica-<i>"] otherwise. *)

val to_chrome : t -> string
(** Chrome [chrome://tracing] / Perfetto JSON with one process lane per
    node: a [process_name] metadata event names each lane, every span
    lands in its recording node's [pid]. *)

(** {2 Validation} *)

type validation = {
  v_requests : int;  (** request traces with at least one span *)
  v_well_formed : int;
  v_malformed : (int * string) list;
      (** [(trace id, reason)] for request traces that are not a
          well-formed tree rooted at [cluster.request] *)
  v_aux : int;  (** election/probe traces *)
  v_aux_orphans : int;  (** aux traces carrying orphaned spans *)
}

val validate : t -> validation
(** Check every assembled request journey: exactly one root, named
    [cluster.request], every parent resolved, causal nesting holds. *)

val validation_ok : validation -> bool
(** No malformed request traces. *)

val pp_validation : Format.formatter -> validation -> unit

(** {2 Tree view} *)

val pp_journey : t -> Format.formatter -> Gp_telemetry.Journey.journey -> unit
(** Render one journey as an indented tree: recording node, span name,
    simulated start/duration, attributes; orphans listed last with
    their missing parent id. *)
