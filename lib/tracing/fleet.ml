(* Fleet metrics: roll the per-node registries of a traced cluster run
   into one cluster-wide view. Counters add, histograms merge through
   the geometry-checked Histogram.merge, so the merged request-latency
   percentiles are exactly what one registry observing every node would
   have recorded. *)

module Metrics = Gp_telemetry.Metrics
module Histogram = Gp_telemetry.Histogram
module Cluster = Gp_cluster.Cluster
module Engine = Gp_distsim.Engine

let merged (r : Cluster.result) =
  match r.Cluster.r_node_metrics with
  | [] -> None
  | ms -> Some (Metrics.merge_all (List.map snd ms))

(* Hot keys: dispatch counts per content key, flagged when a key drew
   at least twice the mean traffic. Sorted hottest first, key breaks
   ties — deterministic. *)
let hot_keys m =
  let series = Metrics.counter_series m "gp_cluster_key_dispatch_total" in
  let keyed =
    List.filter_map
      (fun (labels, v) ->
        match List.assoc_opt "key" labels with
        | Some k -> Some (k, v)
        | None -> None)
      series
  in
  match keyed with
  | [] -> []
  | _ ->
    let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 keyed in
    let mean = total /. float_of_int (List.length keyed) in
    List.filter (fun (_, v) -> v >= 2.0 *. mean) keyed
    |> List.stable_sort (fun (ka, va) (kb, vb) ->
           compare (vb, ka) (va, kb))

type percentiles = {
  pc_count : int;
  pc_p50 : float;
  pc_p90 : float;
  pc_p99 : float;
  pc_max : float;
}

let request_percentiles m =
  match Metrics.find_histogram m "gp_cluster_request_time" with
  | None -> None
  | Some h when Histogram.count h = 0 -> None
  | Some h ->
    Some
      { pc_count = Histogram.count h;
        pc_p50 = Histogram.quantile h 0.5;
        pc_p90 = Histogram.quantile h 0.9;
        pc_p99 = Histogram.quantile h 0.99;
        pc_max = Histogram.max_value h }

let pp_report ppf (r : Cluster.result) =
  match merged r with
  | None ->
    Fmt.pf ppf "no fleet metrics (run the cluster with tracing on)@."
  | Some m ->
    let nodes = List.length r.Cluster.r_node_metrics in
    Fmt.pf ppf "fleet: %d nodes (router + %d replicas)@." nodes (nodes - 1);
    let em = r.Cluster.r_metrics in
    Array.iteri
      (fun i sent ->
        if i < nodes then
          Fmt.pf ppf "  node %d (%s): sent %d, delivered %d@." i
            (if i = 0 then "router" else "replica")
            sent em.Engine.delivered_to.(i))
      em.Engine.sent_by;
    (match request_percentiles m with
     | None -> ()
     | Some pc ->
       Fmt.pf ppf
         "request latency (sim units, %d requests): p50 %.2f  p90 %.2f  \
          p99 %.2f  max %.2f@."
         pc.pc_count pc.pc_p50 pc.pc_p90 pc.pc_p99 pc.pc_max);
    Fmt.pf ppf
      "traffic: serves %.0f, replicates %.0f, retries %.0f, elections \
       %.0f@."
      (Metrics.total m "gp_cluster_serves_total")
      (Metrics.total m "gp_cluster_replicates_total")
      (Metrics.total m "gp_cluster_retries_total")
      (Metrics.total m "gp_cluster_elections_total");
    let shards = Metrics.counter_series m "gp_cluster_shard_dispatch_total" in
    if shards <> [] then begin
      Fmt.pf ppf "dispatches by shard:";
      List.iter
        (fun (labels, v) ->
          match List.assoc_opt "shard" labels with
          | Some s -> Fmt.pf ppf " %s=%.0f" s v
          | None -> ())
        (List.stable_sort compare shards);
      Fmt.pf ppf "@."
    end;
    match hot_keys m with
    | [] -> Fmt.pf ppf "hot keys: none (no key above 2x mean traffic)@."
    | hot ->
      Fmt.pf ppf "hot keys (>= 2x mean dispatch traffic):";
      List.iteri
        (fun i (k, v) -> if i < 8 then Fmt.pf ppf " %s=%.0f" k v)
        hot;
      Fmt.pf ppf "@."
