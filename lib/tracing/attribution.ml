(* Tail-latency attribution: decompose each completed request's
   end-to-end latency into causal segments read off its journey tree.

   The router's cluster.request root bounds the total. Direct children
   partition the interesting time: the winning attempt (outcome=ok) is
   service, attempts that were retried or superseded are retry cost,
   park spans (queued with no leader) are election stall. Whatever the
   children do not cover — scheduling gaps, the retry back-off the
   router sits out between attempts — is queueing. All times are
   simulated units (ring values are sim ×1e3). *)

module Trace = Gp_telemetry.Trace
module Journey = Gp_telemetry.Journey

type segments = {
  sg_rid : int;
  sg_kind : string;  (** request kind, from the root span's attrs *)
  sg_total : float;  (** arrival to completion, simulated units *)
  sg_queue : float;  (** time covered by no attempt/park span *)
  sg_retry : float;  (** attempts that were retried or superseded *)
  sg_stall : float;  (** parked waiting for a coordinator *)
  sg_service : float;  (** the attempt that produced the answer *)
  sg_attempts : int;
}

type cause = Queueing | Retry | Election_stall | Service

let cause_name = function
  | Queueing -> "queueing"
  | Retry -> "retry"
  | Election_stall -> "election-stall"
  | Service -> "service"

(* First maximum wins, in blame order: an equal split blames the
   mechanism (queueing, retry, stall) before the useful work. *)
let dominant sg =
  let cands =
    [ (Queueing, sg.sg_queue); (Retry, sg.sg_retry);
      (Election_stall, sg.sg_stall); (Service, sg.sg_service) ]
  in
  fst
    (List.fold_left
       (fun (bc, bv) (c, v) -> if v > bv then (c, v) else (bc, bv))
       (List.hd cands) (List.tl cands))

let attr sp k = List.assoc_opt k sp.Trace.sp_attrs

let of_journey (j : Journey.journey) =
  match j.Journey.j_roots with
  | [ root ] when String.equal root.Journey.t_span.Trace.sp_name
                    "cluster.request" ->
    let rsp = root.Journey.t_span in
    let sg =
      List.fold_left
        (fun sg (child : Journey.tree) ->
          let sp = child.Journey.t_span in
          let d = sp.Trace.sp_dur_ns /. 1e3 in
          match sp.Trace.sp_name with
          | "cluster.attempt" -> (
            let sg = { sg with sg_attempts = sg.sg_attempts + 1 } in
            match attr sp "outcome" with
            | Some "ok" -> { sg with sg_service = sg.sg_service +. d }
            | _ -> { sg with sg_retry = sg.sg_retry +. d })
          | "cluster.park" -> { sg with sg_stall = sg.sg_stall +. d }
          | _ -> sg)
        { sg_rid = j.Journey.j_trace;
          sg_kind =
            (match attr rsp "kind" with Some k -> k | None -> "?");
          sg_total = rsp.Trace.sp_dur_ns /. 1e3;
          sg_queue = 0.0; sg_retry = 0.0; sg_stall = 0.0;
          sg_service = 0.0; sg_attempts = 0 }
        root.Journey.t_children
    in
    Some
      { sg with
        sg_queue =
          Float.max 0.0
            (sg.sg_total -. sg.sg_service -. sg.sg_retry -. sg.sg_stall) }
  | _ -> None

let of_journeys js = List.filter_map of_journey js

let slowest ?(k = 10) sgs =
  let sorted =
    List.stable_sort
      (fun a b -> compare (b.sg_total, a.sg_rid) (a.sg_total, b.sg_rid))
      sgs
  in
  List.filteri (fun i _ -> i < k) sorted

let pp_table ppf sgs =
  Fmt.pf ppf
    "  %-5s %-8s %9s %9s %9s %9s %9s  %-4s %s@." "rid" "kind" "total"
    "queue" "retry" "stall" "service" "att" "dominant";
  List.iter
    (fun sg ->
      Fmt.pf ppf "  %-5d %-8s %9.2f %9.2f %9.2f %9.2f %9.2f  %-4d %s@."
        sg.sg_rid sg.sg_kind sg.sg_total sg.sg_queue sg.sg_retry
        sg.sg_stall sg.sg_service sg.sg_attempts
        (cause_name (dominant sg)))
    sgs

type summary = {
  su_requests : int;
  su_by_cause : (cause * int) list;  (** dominant-cause census *)
  su_mean_total : float;
  su_mean_queue : float;
  su_mean_retry : float;
  su_mean_stall : float;
  su_mean_service : float;
}

let summarize sgs =
  let n = List.length sgs in
  let fn = float_of_int (Int.max 1 n) in
  let tot f = List.fold_left (fun a sg -> a +. f sg) 0.0 sgs /. fn in
  let census c =
    List.length (List.filter (fun sg -> dominant sg = c) sgs)
  in
  { su_requests = n;
    su_by_cause =
      List.map
        (fun c -> (c, census c))
        [ Queueing; Retry; Election_stall; Service ];
    su_mean_total = tot (fun sg -> sg.sg_total);
    su_mean_queue = tot (fun sg -> sg.sg_queue);
    su_mean_retry = tot (fun sg -> sg.sg_retry);
    su_mean_stall = tot (fun sg -> sg.sg_stall);
    su_mean_service = tot (fun sg -> sg.sg_service) }

let pp_summary ppf su =
  Fmt.pf ppf
    "%d requests attributed: mean total %.2f = queue %.2f + retry %.2f \
     + stall %.2f + service %.2f@."
    su.su_requests su.su_mean_total su.su_mean_queue su.su_mean_retry
    su.su_mean_stall su.su_mean_service;
  Fmt.pf ppf "dominant causes:";
  List.iter
    (fun (c, n) -> if n > 0 then Fmt.pf ppf " %s=%d" (cause_name c) n)
    su.su_by_cause;
  Fmt.pf ppf "@."
