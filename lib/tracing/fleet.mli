(** Cluster-wide fleet metrics: merge the per-node registries a traced
    run collects into one view — summed traffic counters,
    geometry-checked histogram merges for cluster-wide latency
    percentiles, per-shard dispatch counts, and a hot-key signal. *)

val merged : Gp_cluster.Cluster.result -> Gp_telemetry.Metrics.t option
(** {!Gp_telemetry.Metrics.merge_all} over the run's [r_node_metrics];
    [None] when the run was not traced. *)

val hot_keys : Gp_telemetry.Metrics.t -> (string * float) list
(** Content keys whose dispatch count is at least twice the mean over
    all keys, hottest first (key breaks ties — deterministic). Reads
    the [gp_cluster_key_dispatch_total] family of a merged registry. *)

type percentiles = {
  pc_count : int;
  pc_p50 : float;
  pc_p90 : float;
  pc_p99 : float;
  pc_max : float;
}

val request_percentiles :
  Gp_telemetry.Metrics.t -> percentiles option
(** Cluster-wide request-latency percentiles (simulated units) from the
    merged [gp_cluster_request_time] histogram; [None] when absent or
    empty. *)

val pp_report : Format.formatter -> Gp_cluster.Cluster.result -> unit
(** The fleet report: per-node sent/delivered traffic (from the engine's
    per-node counters), merged latency percentiles, traffic totals,
    per-shard dispatches, hot keys. Deterministic per (config,
    workload). *)
