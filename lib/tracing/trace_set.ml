(* The collected tracing artifact of one cluster run: per-node span
   lanes plus the run shape, with a deterministic JSONL dump format the
   CLI writes and reads back. The wire context ("trace/span") is
   rendered and parsed by Gp_telemetry.Context's cursor primitives —
   the same parse-is-the-write-path discipline the request wire uses. *)

module Trace = Gp_telemetry.Trace
module Journey = Gp_telemetry.Journey
module Context = Gp_telemetry.Context
module Json = Gp_telemetry.Json
module Wire = Gp_service.Wire
module Cluster = Gp_cluster.Cluster

type t = {
  ts_replicas : int;
  ts_n : int; (* workload size: trace ids below this are requests *)
  ts_seed : int;
  ts_lanes : (int * Trace.span list) list; (* node order *)
}

let of_result (r : Cluster.result) =
  { ts_replicas = r.Cluster.r_config.Cluster.replicas;
    ts_n = Array.length r.Cluster.r_requests;
    ts_seed = r.Cluster.r_config.Cluster.seed;
    ts_lanes = r.Cluster.r_traces }

let journeys ts = Journey.assemble ts.ts_lanes
let request_journey ts rid = Journey.find (journeys ts) rid
let is_request ts tid = tid >= 0 && tid < ts.ts_n

(* -------------------------------------------------------------- *)
(* Dump / load                                                     *)
(* -------------------------------------------------------------- *)

(* Times are dumped in simulated units (ring values are sim ×1e3) with
   a fixed six-decimal rendering: deterministic, monotone, and wide
   enough that reloaded intervals keep their nesting relations. The
   "trace/span" pair rides as the [ctx] field, written through
   Context.render_into straight into the line buffer. *)
let span_line buf ~node sp =
  let trace =
    match Journey.trace_attr sp with Some tid -> tid | None -> 0
  in
  Buffer.add_string buf "{\"node\":";
  Buffer.add_string buf (string_of_int node);
  Buffer.add_string buf ",\"ctx\":\"";
  Context.render_into buf (Context.v ~trace ~span:sp.Trace.sp_id);
  Buffer.add_string buf "\",\"parent\":";
  Buffer.add_string buf
    (string_of_int
       (match sp.Trace.sp_parent with Some p -> p | None -> 0));
  Buffer.add_string buf ",\"name\":";
  Buffer.add_string buf (Json.str sp.Trace.sp_name);
  Buffer.add_string buf ",\"start\":";
  Buffer.add_string buf
    (Printf.sprintf "%.6f" (sp.Trace.sp_start_ns /. 1e3));
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf (Printf.sprintf "%.6f" (sp.Trace.sp_dur_ns /. 1e3));
  Buffer.add_string buf ",\"attrs\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if not (String.equal k "trace") then begin
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf (Json.str k);
        Buffer.add_char buf ':';
        Buffer.add_string buf (Json.str v)
      end)
    sp.Trace.sp_attrs;
  Buffer.add_string buf "}}\n"

let dump ts =
  let buf = Buffer.create 65536 in
  let total =
    List.fold_left (fun a (_, sps) -> a + List.length sps) 0 ts.ts_lanes
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"gp_trace\":1,\"replicas\":%d,\"n\":%d,\"seed\":%d,\"spans\":%d}\n"
       ts.ts_replicas ts.ts_n ts.ts_seed total);
  List.iter
    (fun (node, sps) -> List.iter (span_line buf ~node) sps)
    ts.ts_lanes;
  Buffer.contents buf

let field name = function
  | Wire.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let int_field name obj =
  match field name obj with
  | Some (Wire.Int i) -> i
  | _ -> raise (Wire.Error ("trace dump: missing int field " ^ name))

let num_field name obj =
  match field name obj with
  | Some (Wire.Int i) -> float_of_int i
  | Some (Wire.Float f) -> f
  | _ -> raise (Wire.Error ("trace dump: missing number field " ^ name))

let str_field name obj =
  match field name obj with
  | Some (Wire.Str s) -> s
  | _ -> raise (Wire.Error ("trace dump: missing string field " ^ name))

let load doc =
  let lines =
    String.split_on_char '\n' doc
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace dump"
  | header :: spans -> (
    try
      let header = Wire.parse header in
      (match field "gp_trace" header with
       | Some (Wire.Int 1) -> ()
       | _ -> raise (Wire.Error "not a gp_trace dump (bad header)"));
      let replicas = int_field "replicas" header in
      let n = int_field "n" header in
      let seed = int_field "seed" header in
      let lanes = Array.make (replicas + 1) [] in
      List.iter
        (fun line ->
          let obj = Wire.parse line in
          let node = int_field "node" obj in
          if node < 0 || node > replicas then
            raise (Wire.Error "trace dump: node out of range");
          let ctx =
            match Context.of_string (str_field "ctx" obj) with
            | Some c -> c
            | None -> raise (Wire.Error "trace dump: bad ctx")
          in
          let parent = int_field "parent" obj in
          let attrs =
            match field "attrs" obj with
            | Some (Wire.Obj kvs) ->
              List.map
                (function
                  | (k, Wire.Str v) -> (k, v)
                  | (k, _) ->
                    raise (Wire.Error ("trace dump: non-string attr " ^ k)))
                kvs
            | _ -> raise (Wire.Error "trace dump: missing attrs")
          in
          let sp =
            { Trace.sp_id = Context.span ctx;
              sp_parent = (if parent = 0 then None else Some parent);
              sp_name = str_field "name" obj;
              sp_start_ns = num_field "start" obj *. 1e3;
              sp_dur_ns = num_field "dur" obj *. 1e3;
              sp_attrs =
                ("trace", string_of_int (Context.trace ctx)) :: attrs;
              sp_gc = None }
          in
          lanes.(node) <- sp :: lanes.(node))
        spans;
      Ok
        { ts_replicas = replicas;
          ts_n = n;
          ts_seed = seed;
          ts_lanes =
            List.init (replicas + 1) (fun i -> (i, List.rev lanes.(i))) }
    with Wire.Error e -> Error e)

(* -------------------------------------------------------------- *)
(* Chrome export: one pid lane per node                            *)
(* -------------------------------------------------------------- *)

let node_name ts node =
  if node = 0 then "router"
  else if ts.ts_replicas > 0 then Printf.sprintf "replica-%d" node
  else Printf.sprintf "node-%d" node

let to_chrome ts =
  Trace.to_chrome_json_lanes
    (List.map
       (fun (node, sps) -> (node + 1, node_name ts node, sps))
       ts.ts_lanes)

(* -------------------------------------------------------------- *)
(* Validation                                                      *)
(* -------------------------------------------------------------- *)

type validation = {
  v_requests : int; (* request traces with at least one span *)
  v_well_formed : int;
  v_malformed : (int * string) list; (* request traces failing checks *)
  v_aux : int; (* election/probe traces *)
  v_aux_orphans : int; (* aux traces carrying orphan spans *)
}

let validation_ok v = v.v_malformed = []

(* A request trace must be a well-formed journey whose single root is
   the router's cluster.request span. Aux traces (elections, probes)
   may legitimately carry orphans — a dropped reply leaves a child
   whose parent never closed — so they are only counted, never
   failed. *)
let validate ts =
  let js = journeys ts in
  List.fold_left
    (fun v j ->
      if is_request ts j.Journey.j_trace then begin
        let verdict =
          match Journey.well_formed j with
          | Error e -> Error e
          | Ok () -> (
            match Journey.root_name j with
            | Some "cluster.request" -> Ok ()
            | Some other ->
              Error
                (Printf.sprintf "trace %d: root is %s, not cluster.request"
                   j.Journey.j_trace other)
            | None ->
              Error (Printf.sprintf "trace %d: no root" j.Journey.j_trace))
        in
        match verdict with
        | Ok () ->
          { v with v_requests = v.v_requests + 1;
                   v_well_formed = v.v_well_formed + 1 }
        | Error e ->
          { v with v_requests = v.v_requests + 1;
                   v_malformed = v.v_malformed @ [ (j.Journey.j_trace, e) ] }
      end
      else
        { v with v_aux = v.v_aux + 1;
                 v_aux_orphans =
                   (v.v_aux_orphans
                   + if j.Journey.j_orphans <> [] then 1 else 0) })
    { v_requests = 0; v_well_formed = 0; v_malformed = []; v_aux = 0;
      v_aux_orphans = 0 }
    js

let pp_validation ppf v =
  Fmt.pf ppf
    "request traces: %d assembled, %d well-formed, %d malformed@."
    v.v_requests v.v_well_formed
    (List.length v.v_malformed);
  List.iter (fun (_, e) -> Fmt.pf ppf "  MALFORMED %s@." e) v.v_malformed;
  Fmt.pf ppf
    "aux traces (elections, probes): %d, %d with orphaned spans \
     (dropped parents, surfaced)@."
    v.v_aux v.v_aux_orphans

(* -------------------------------------------------------------- *)
(* Tree view                                                       *)
(* -------------------------------------------------------------- *)

let pp_journey ts ppf (j : Journey.journey) =
  Fmt.pf ppf "trace %d%s: %d span%s@." j.Journey.j_trace
    (if is_request ts j.Journey.j_trace then
       Printf.sprintf " (request #%d)" j.Journey.j_trace
     else " (aux)")
    j.Journey.j_spans
    (if j.Journey.j_spans = 1 then "" else "s");
  let rec pp_node depth (t : Journey.tree) =
    let sp = t.Journey.t_span in
    Fmt.pf ppf "  %-10s %s%-*s t=%-9.2f +%-8.2f"
      (node_name ts t.Journey.t_node)
      (String.make (2 * depth) ' ')
      (Int.max 1 (24 - (2 * depth)))
      sp.Trace.sp_name
      (sp.Trace.sp_start_ns /. 1e3)
      (sp.Trace.sp_dur_ns /. 1e3);
    List.iter
      (fun (k, v) ->
        if not (String.equal k "trace") then Fmt.pf ppf " %s=%s" k v)
      sp.Trace.sp_attrs;
    Fmt.pf ppf "@.";
    List.iter (pp_node (depth + 1)) t.Journey.t_children
  in
  List.iter (pp_node 0) j.Journey.j_roots;
  List.iter
    (fun (node, sp) ->
      Fmt.pf ppf "  %-10s ORPHAN %s t=%.2f (missing parent %d)@."
        (node_name ts node) sp.Trace.sp_name
        (sp.Trace.sp_start_ns /. 1e3)
        (match sp.Trace.sp_parent with Some p -> p | None -> 0))
    j.Journey.j_orphans
