(** Deterministic tail-latency attribution: decompose each completed
    request's end-to-end simulated latency into causal segments read
    off its assembled journey tree, and name the dominant cause.

    Segments partition the root [cluster.request] interval: the winning
    attempt is {e service}, attempts that were retried or superseded
    are {e retry}, park spans (queued with no coordinator) are
    {e election stall}, and the uncovered remainder — retry back-off
    the router sits out between attempts — is {e queueing}. *)

type segments = {
  sg_rid : int;
  sg_kind : string;  (** request kind, from the root span's attrs *)
  sg_total : float;  (** arrival to completion, simulated units *)
  sg_queue : float;  (** time covered by no attempt/park span *)
  sg_retry : float;  (** attempts that were retried or superseded *)
  sg_stall : float;  (** parked waiting for a coordinator *)
  sg_service : float;  (** the attempt that produced the answer *)
  sg_attempts : int;
}

type cause = Queueing | Retry | Election_stall | Service

val cause_name : cause -> string
(** ["queueing"], ["retry"], ["election-stall"], ["service"]. *)

val dominant : segments -> cause
(** The largest segment; ties blame the mechanism before the work
    (queueing, then retry, then stall, then service). *)

val of_journey : Gp_telemetry.Journey.journey -> segments option
(** [None] unless the journey has a single [cluster.request] root. *)

val of_journeys : Gp_telemetry.Journey.journey list -> segments list

val slowest : ?k:int -> segments list -> segments list
(** The [k] (default 10) largest totals, slowest first; rid breaks
    ties, so the order is deterministic. *)

val pp_table : Format.formatter -> segments list -> unit
(** One aligned row per request: segments, attempt count, dominant
    cause. *)

type summary = {
  su_requests : int;
  su_by_cause : (cause * int) list;  (** dominant-cause census *)
  su_mean_total : float;
  su_mean_queue : float;
  su_mean_retry : float;
  su_mean_stall : float;
  su_mean_service : float;
}

val summarize : segments list -> summary

val pp_summary : Format.formatter -> summary -> unit
